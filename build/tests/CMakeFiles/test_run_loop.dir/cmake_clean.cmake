file(REMOVE_RECURSE
  "CMakeFiles/test_run_loop.dir/test_run_loop.cpp.o"
  "CMakeFiles/test_run_loop.dir/test_run_loop.cpp.o.d"
  "test_run_loop"
  "test_run_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_run_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
