# Empty dependencies file for test_run_loop.
# This may be replaced when dependencies are built.
