# Empty compiler generated dependencies file for test_arbitration.
# This may be replaced when dependencies are built.
