file(REMOVE_RECURSE
  "CMakeFiles/test_arbitration.dir/test_arbitration.cpp.o"
  "CMakeFiles/test_arbitration.dir/test_arbitration.cpp.o.d"
  "test_arbitration"
  "test_arbitration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arbitration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
