# Empty dependencies file for test_mis_coloring.
# This may be replaced when dependencies are built.
