file(REMOVE_RECURSE
  "CMakeFiles/test_mis_coloring.dir/test_mis_coloring.cpp.o"
  "CMakeFiles/test_mis_coloring.dir/test_mis_coloring.cpp.o.d"
  "test_mis_coloring"
  "test_mis_coloring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mis_coloring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
