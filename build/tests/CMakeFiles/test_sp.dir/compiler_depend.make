# Empty compiler generated dependencies file for test_sp.
# This may be replaced when dependencies are built.
