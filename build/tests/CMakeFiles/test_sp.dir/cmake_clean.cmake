file(REMOVE_RECURSE
  "CMakeFiles/test_sp.dir/test_sp.cpp.o"
  "CMakeFiles/test_sp.dir/test_sp.cpp.o.d"
  "test_sp"
  "test_sp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
