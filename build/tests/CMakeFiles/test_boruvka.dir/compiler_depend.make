# Empty compiler generated dependencies file for test_boruvka.
# This may be replaced when dependencies are built.
