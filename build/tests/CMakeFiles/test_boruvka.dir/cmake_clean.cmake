file(REMOVE_RECURSE
  "CMakeFiles/test_boruvka.dir/test_boruvka.cpp.o"
  "CMakeFiles/test_boruvka.dir/test_boruvka.cpp.o.d"
  "test_boruvka"
  "test_boruvka.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_boruvka.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
