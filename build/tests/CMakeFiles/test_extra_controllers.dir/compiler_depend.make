# Empty compiler generated dependencies file for test_extra_controllers.
# This may be replaced when dependencies are built.
