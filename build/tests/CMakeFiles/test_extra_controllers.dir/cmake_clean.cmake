file(REMOVE_RECURSE
  "CMakeFiles/test_extra_controllers.dir/test_extra_controllers.cpp.o"
  "CMakeFiles/test_extra_controllers.dir/test_extra_controllers.cpp.o.d"
  "test_extra_controllers"
  "test_extra_controllers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_extra_controllers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
