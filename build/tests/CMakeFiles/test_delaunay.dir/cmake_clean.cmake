file(REMOVE_RECURSE
  "CMakeFiles/test_delaunay.dir/test_delaunay.cpp.o"
  "CMakeFiles/test_delaunay.dir/test_delaunay.cpp.o.d"
  "test_delaunay"
  "test_delaunay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_delaunay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
