file(REMOVE_RECURSE
  "CMakeFiles/test_permutation_sweep.dir/test_permutation_sweep.cpp.o"
  "CMakeFiles/test_permutation_sweep.dir/test_permutation_sweep.cpp.o.d"
  "test_permutation_sweep"
  "test_permutation_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_permutation_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
