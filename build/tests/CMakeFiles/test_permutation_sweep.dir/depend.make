# Empty dependencies file for test_permutation_sweep.
# This may be replaced when dependencies are built.
