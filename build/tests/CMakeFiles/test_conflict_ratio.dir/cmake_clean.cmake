file(REMOVE_RECURSE
  "CMakeFiles/test_conflict_ratio.dir/test_conflict_ratio.cpp.o"
  "CMakeFiles/test_conflict_ratio.dir/test_conflict_ratio.cpp.o.d"
  "test_conflict_ratio"
  "test_conflict_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_conflict_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
