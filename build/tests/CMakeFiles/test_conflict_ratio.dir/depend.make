# Empty dependencies file for test_conflict_ratio.
# This may be replaced when dependencies are built.
