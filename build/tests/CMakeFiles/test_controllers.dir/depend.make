# Empty dependencies file for test_controllers.
# This may be replaced when dependencies are built.
