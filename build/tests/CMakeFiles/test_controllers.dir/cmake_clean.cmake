file(REMOVE_RECURSE
  "CMakeFiles/test_controllers.dir/test_controllers.cpp.o"
  "CMakeFiles/test_controllers.dir/test_controllers.cpp.o.d"
  "test_controllers"
  "test_controllers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_controllers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
