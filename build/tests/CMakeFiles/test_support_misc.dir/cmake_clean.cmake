file(REMOVE_RECURSE
  "CMakeFiles/test_support_misc.dir/test_support_misc.cpp.o"
  "CMakeFiles/test_support_misc.dir/test_support_misc.cpp.o.d"
  "test_support_misc"
  "test_support_misc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_support_misc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
