# Empty compiler generated dependencies file for test_support_misc.
# This may be replaced when dependencies are built.
