file(REMOVE_RECURSE
  "CMakeFiles/test_sssp_maxflow.dir/test_sssp_maxflow.cpp.o"
  "CMakeFiles/test_sssp_maxflow.dir/test_sssp_maxflow.cpp.o.d"
  "test_sssp_maxflow"
  "test_sssp_maxflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sssp_maxflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
