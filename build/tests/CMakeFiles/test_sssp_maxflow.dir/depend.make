# Empty dependencies file for test_sssp_maxflow.
# This may be replaced when dependencies are built.
