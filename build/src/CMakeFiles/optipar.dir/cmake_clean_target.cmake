file(REMOVE_RECURSE
  "liboptipar.a"
)
