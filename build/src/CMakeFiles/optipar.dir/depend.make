# Empty dependencies file for optipar.
# This may be replaced when dependencies are built.
