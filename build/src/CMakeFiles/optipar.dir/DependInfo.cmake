
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/boruvka/boruvka.cpp" "src/CMakeFiles/optipar.dir/apps/boruvka/boruvka.cpp.o" "gcc" "src/CMakeFiles/optipar.dir/apps/boruvka/boruvka.cpp.o.d"
  "/root/repo/src/apps/coloring/coloring.cpp" "src/CMakeFiles/optipar.dir/apps/coloring/coloring.cpp.o" "gcc" "src/CMakeFiles/optipar.dir/apps/coloring/coloring.cpp.o.d"
  "/root/repo/src/apps/dmr/delaunay.cpp" "src/CMakeFiles/optipar.dir/apps/dmr/delaunay.cpp.o" "gcc" "src/CMakeFiles/optipar.dir/apps/dmr/delaunay.cpp.o.d"
  "/root/repo/src/apps/dmr/geometry.cpp" "src/CMakeFiles/optipar.dir/apps/dmr/geometry.cpp.o" "gcc" "src/CMakeFiles/optipar.dir/apps/dmr/geometry.cpp.o.d"
  "/root/repo/src/apps/dmr/mesh.cpp" "src/CMakeFiles/optipar.dir/apps/dmr/mesh.cpp.o" "gcc" "src/CMakeFiles/optipar.dir/apps/dmr/mesh.cpp.o.d"
  "/root/repo/src/apps/dmr/refine.cpp" "src/CMakeFiles/optipar.dir/apps/dmr/refine.cpp.o" "gcc" "src/CMakeFiles/optipar.dir/apps/dmr/refine.cpp.o.d"
  "/root/repo/src/apps/maxflow/maxflow.cpp" "src/CMakeFiles/optipar.dir/apps/maxflow/maxflow.cpp.o" "gcc" "src/CMakeFiles/optipar.dir/apps/maxflow/maxflow.cpp.o.d"
  "/root/repo/src/apps/mis/mis.cpp" "src/CMakeFiles/optipar.dir/apps/mis/mis.cpp.o" "gcc" "src/CMakeFiles/optipar.dir/apps/mis/mis.cpp.o.d"
  "/root/repo/src/apps/sp/formula.cpp" "src/CMakeFiles/optipar.dir/apps/sp/formula.cpp.o" "gcc" "src/CMakeFiles/optipar.dir/apps/sp/formula.cpp.o.d"
  "/root/repo/src/apps/sp/survey.cpp" "src/CMakeFiles/optipar.dir/apps/sp/survey.cpp.o" "gcc" "src/CMakeFiles/optipar.dir/apps/sp/survey.cpp.o.d"
  "/root/repo/src/apps/sssp/sssp.cpp" "src/CMakeFiles/optipar.dir/apps/sssp/sssp.cpp.o" "gcc" "src/CMakeFiles/optipar.dir/apps/sssp/sssp.cpp.o.d"
  "/root/repo/src/control/baselines.cpp" "src/CMakeFiles/optipar.dir/control/baselines.cpp.o" "gcc" "src/CMakeFiles/optipar.dir/control/baselines.cpp.o.d"
  "/root/repo/src/control/extra.cpp" "src/CMakeFiles/optipar.dir/control/extra.cpp.o" "gcc" "src/CMakeFiles/optipar.dir/control/extra.cpp.o.d"
  "/root/repo/src/control/hybrid.cpp" "src/CMakeFiles/optipar.dir/control/hybrid.cpp.o" "gcc" "src/CMakeFiles/optipar.dir/control/hybrid.cpp.o.d"
  "/root/repo/src/control/recurrence.cpp" "src/CMakeFiles/optipar.dir/control/recurrence.cpp.o" "gcc" "src/CMakeFiles/optipar.dir/control/recurrence.cpp.o.d"
  "/root/repo/src/graph/algos.cpp" "src/CMakeFiles/optipar.dir/graph/algos.cpp.o" "gcc" "src/CMakeFiles/optipar.dir/graph/algos.cpp.o.d"
  "/root/repo/src/graph/csr_graph.cpp" "src/CMakeFiles/optipar.dir/graph/csr_graph.cpp.o" "gcc" "src/CMakeFiles/optipar.dir/graph/csr_graph.cpp.o.d"
  "/root/repo/src/graph/dynamic_graph.cpp" "src/CMakeFiles/optipar.dir/graph/dynamic_graph.cpp.o" "gcc" "src/CMakeFiles/optipar.dir/graph/dynamic_graph.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/CMakeFiles/optipar.dir/graph/generators.cpp.o" "gcc" "src/CMakeFiles/optipar.dir/graph/generators.cpp.o.d"
  "/root/repo/src/graph/graph_io.cpp" "src/CMakeFiles/optipar.dir/graph/graph_io.cpp.o" "gcc" "src/CMakeFiles/optipar.dir/graph/graph_io.cpp.o.d"
  "/root/repo/src/graph/weighted_graph.cpp" "src/CMakeFiles/optipar.dir/graph/weighted_graph.cpp.o" "gcc" "src/CMakeFiles/optipar.dir/graph/weighted_graph.cpp.o.d"
  "/root/repo/src/model/conflict_ratio.cpp" "src/CMakeFiles/optipar.dir/model/conflict_ratio.cpp.o" "gcc" "src/CMakeFiles/optipar.dir/model/conflict_ratio.cpp.o.d"
  "/root/repo/src/model/exact.cpp" "src/CMakeFiles/optipar.dir/model/exact.cpp.o" "gcc" "src/CMakeFiles/optipar.dir/model/exact.cpp.o.d"
  "/root/repo/src/model/permutation_sweep.cpp" "src/CMakeFiles/optipar.dir/model/permutation_sweep.cpp.o" "gcc" "src/CMakeFiles/optipar.dir/model/permutation_sweep.cpp.o.d"
  "/root/repo/src/model/seating.cpp" "src/CMakeFiles/optipar.dir/model/seating.cpp.o" "gcc" "src/CMakeFiles/optipar.dir/model/seating.cpp.o.d"
  "/root/repo/src/model/theory.cpp" "src/CMakeFiles/optipar.dir/model/theory.cpp.o" "gcc" "src/CMakeFiles/optipar.dir/model/theory.cpp.o.d"
  "/root/repo/src/rt/adaptive_executor.cpp" "src/CMakeFiles/optipar.dir/rt/adaptive_executor.cpp.o" "gcc" "src/CMakeFiles/optipar.dir/rt/adaptive_executor.cpp.o.d"
  "/root/repo/src/rt/item_lock.cpp" "src/CMakeFiles/optipar.dir/rt/item_lock.cpp.o" "gcc" "src/CMakeFiles/optipar.dir/rt/item_lock.cpp.o.d"
  "/root/repo/src/rt/spec_executor.cpp" "src/CMakeFiles/optipar.dir/rt/spec_executor.cpp.o" "gcc" "src/CMakeFiles/optipar.dir/rt/spec_executor.cpp.o.d"
  "/root/repo/src/sim/profile.cpp" "src/CMakeFiles/optipar.dir/sim/profile.cpp.o" "gcc" "src/CMakeFiles/optipar.dir/sim/profile.cpp.o.d"
  "/root/repo/src/sim/run_loop.cpp" "src/CMakeFiles/optipar.dir/sim/run_loop.cpp.o" "gcc" "src/CMakeFiles/optipar.dir/sim/run_loop.cpp.o.d"
  "/root/repo/src/sim/step_simulator.cpp" "src/CMakeFiles/optipar.dir/sim/step_simulator.cpp.o" "gcc" "src/CMakeFiles/optipar.dir/sim/step_simulator.cpp.o.d"
  "/root/repo/src/sim/workloads.cpp" "src/CMakeFiles/optipar.dir/sim/workloads.cpp.o" "gcc" "src/CMakeFiles/optipar.dir/sim/workloads.cpp.o.d"
  "/root/repo/src/support/csv.cpp" "src/CMakeFiles/optipar.dir/support/csv.cpp.o" "gcc" "src/CMakeFiles/optipar.dir/support/csv.cpp.o.d"
  "/root/repo/src/support/options.cpp" "src/CMakeFiles/optipar.dir/support/options.cpp.o" "gcc" "src/CMakeFiles/optipar.dir/support/options.cpp.o.d"
  "/root/repo/src/support/stats.cpp" "src/CMakeFiles/optipar.dir/support/stats.cpp.o" "gcc" "src/CMakeFiles/optipar.dir/support/stats.cpp.o.d"
  "/root/repo/src/support/thread_pool.cpp" "src/CMakeFiles/optipar.dir/support/thread_pool.cpp.o" "gcc" "src/CMakeFiles/optipar.dir/support/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
