# Empty compiler generated dependencies file for optipar_cli.
# This may be replaced when dependencies are built.
