file(REMOVE_RECURSE
  "CMakeFiles/optipar_cli.dir/optipar_cli.cpp.o"
  "CMakeFiles/optipar_cli.dir/optipar_cli.cpp.o.d"
  "optipar_cli"
  "optipar_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optipar_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
