// optipar command-line tool — the library's functionality without writing
// C++: generate CC graphs, estimate conflict-ratio curves, locate operating
// points, evaluate the paper's bounds, and run controllers.
//
//   optipar_cli gen     --family=gnm --n=2000 --d=16 --seed=1 --out=g.txt
//   optipar_cli curve   --graph=g.txt --trials=300 [--csv=curve.csv]
//                       [--epsilon=0.005 --max-trials=100000
//                        --relabel=none|bfs|degree] (adaptive engine:
//                       run until every r̄(m) CI half-width <= epsilon)
//   optipar_cli mu      --graph=g.txt --rho=0.25 [--epsilon= --max-trials=
//                       --relabel=]
//   optipar_cli theory  --n=2000 --d=16 [--m=100]
//   optipar_cli control --graph=g.txt --controller=hybrid --rho=0.25
//                       --steps=120 [--csv=trace.csv]
//   optipar_cli seating --n=1000   (unfriendly seating reference numbers)
//   optipar_cli chaos   --tasks=400 --threads=4 --fault-seed=42
//                       --fault-rate=0.2 --max-retries=3
//                       (fault-injected speculative run; DESIGN.md §8)
//   optipar_cli run     --graph=g.txt --threads=4 --controller=hybrid
//                       --rho=0.25 [--steps=N --metrics-out=m.prom
//                       --trace-out=t.jsonl --csv=trace.csv]
//                       [--scheduler=random|chromatic|relaxed] (which
//                       backend owns the round's draw stage: the paper's
//                       random draw, zero-abort chromatic color classes,
//                       or the MultiQueue relaxed-priority draw)
//                       [--checkpoint-dir=DIR --checkpoint-every=N
//                       --resume] (adaptive closed loop on the REAL
//                       speculative runtime: one task per node, each
//                       acquiring its closed neighborhood; with a
//                       checkpoint dir the run journals every round and
//                       snapshots every N rounds — --resume picks up a
//                       killed run from the newest valid snapshot.
//                       --crash-point=NAME --crash-round=N inject a
//                       deliberate _Exit at a chosen durability step for
//                       the crash-recovery harness; see DESIGN.md §11)
//   optipar_cli run     --app=mis|coloring|sssp|boruvka|maxflow|sp|dmr
//                       [--n=300 --d=8 --seed=1 --threads=4
//                       --controller=hybrid --scheduler=...] (one real
//                       application kernel end to end, result certified by
//                       an independent checker — src/verify/; refuted
//                       certificate => exit 8. `run` and `chaos` also take
//                       --verify to certify the default workloads.)
//   optipar_cli metrics [--format=prometheus|json] (run a small
//                       deterministic workload with telemetry attached and
//                       print the metrics export — the scrape surface demo)
//   optipar_cli profile --graph=g.txt --threads=4 [--sample-period=1
//                       --top=16 --out=profile.json] (run the closed loop
//                       with the conflict-attribution profiler attached:
//                       per-item abort/arb-wait counters, top-K hotspot
//                       table, degree-bucketed rollup; DESIGN.md §15)
//
// `run`, `curve`, `mu`, and `chaos` all accept --metrics-out=FILE (metrics
// rendered as Prometheus text, or JSON when FILE ends in .json) and
// --trace-out=FILE (JSONL: `{"type":"round",...}` per-round records
// interleaved with `{"type":"event",...}` sub-round telemetry events).
// `run` and `chaos` additionally accept --trace-chrome=FILE: a Chrome
// trace-event JSON span timeline (job → round → phase → lane chunk),
// viewable in Perfetto / chrome://tracing and validated by
// scripts/check_trace.py.
#include <sys/stat.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <numeric>
#include <optional>
#include <string>
#include <vector>

#include "control/baselines.hpp"
#include "control/extra.hpp"
#include "control/factory.hpp"
#include "control/hybrid.hpp"
#include "control/recurrence.hpp"
#include "graph/generators.hpp"
#include "graph/graph_io.hpp"
#include "graph/relabel.hpp"
#include "model/adaptive_estimator.hpp"
#include "model/conflict_ratio.hpp"
#include "model/seating.hpp"
#include "model/theory.hpp"
#include "rt/adaptive_executor.hpp"
#include "rt/checkpoint.hpp"
#include "rt/fault_injector.hpp"
#include "rt/spec_executor.hpp"
#include "sim/run_loop.hpp"
#include "sim/trace.hpp"
#include "support/csv.hpp"
#include "support/deadline.hpp"
#include "support/failure_policy.hpp"
#include "support/options.hpp"
#include "support/snapshot/snapshot.hpp"
#include "support/telemetry/conflict_profiler.hpp"
#include "support/telemetry/metrics_registry.hpp"
#include "support/telemetry/span_trace.hpp"
#include "support/telemetry/telemetry.hpp"
#include "support/thread_pool.hpp"
#include "verify/certifier.hpp"
#include "verify/executor_cert.hpp"
#include "verify/harness.hpp"

namespace {

using namespace optipar;

// Process exit codes, shared with optipar_serve and documented in
// README.md ("Exit codes"): scripts can distinguish WHY a run failed
// without parsing stderr.
enum ExitCode : int {
  kExitOk = 0,
  kExitError = 1,     ///< generic runtime failure / chaos verdict fail
  kExitUsage = 2,     ///< bad subcommand or option value
  kExitGraphIo = 3,   ///< GraphIoError: unreadable/hostile graph input
  kExitSnapshot = 4,  ///< SnapshotError: unusable checkpoint/snapshot state
  kExitLivelock = 5,  ///< LivelockError: no allocation can commit the work
  kExitDeadline = 6,  ///< --timeout-ms expired (JobInterrupted)
  // 7 (overloaded) belongs to the optipar_serve client's admission
  // rejection; skipped here so the two taxonomies never collide.
  kExitCertification = 8,  ///< --verify: the result certificate was refuted
};

int usage() {
  std::cerr <<
      "usage: optipar_cli"
      " <gen|curve|mu|theory|control|seating|chaos|run|metrics|profile>"
      " [--options]\n"
      "run with a subcommand and no options to see its parameters\n"
      "run/chaos accept --scheduler=random|chromatic|relaxed\n"
      "run/chaos accept --verify (certify the result; refuted => exit 8);\n"
      "run accepts --app=mis|coloring|sssp|boruvka|maxflow|sp|dmr for a\n"
      "certified end-to-end kernel run\n"
      "exit codes: 0 ok, 1 error, 2 usage, 3 graph-io, 4 snapshot,"
      " 5 livelock, 6 deadline, 8 certification\n";
  return kExitUsage;
}

// The controller factory is shared with the serve daemon
// (control/factory.hpp): both hosts accept exactly the same names.

/// Parse --scheduler for run/chaos. Unknown names report the offending
/// value and exit 2 through the documented usage text, like unknown
/// subcommands do.
std::optional<sched::Backend> parse_scheduler(const Options& opt) {
  const std::string name = opt.get("scheduler", "random");
  const auto backend = sched::parse_backend(name);
  if (!backend) {
    std::cerr << "unknown --scheduler=" << name
              << " (expected random|chromatic|relaxed)\n";
  }
  return backend;
}

// --- telemetry plumbing shared by run/curve/mu/chaos -----------------------

bool telemetry_requested(const Options& opt) {
  return opt.has("metrics-out") || opt.has("trace-out") ||
         opt.has("trace-chrome");
}

/// Executor-level facts that live outside the per-lane counters: totals the
/// controller observed, dead letters, and the degradation flags.
void export_executor_metrics(MetricsRegistry& reg,
                             const SpeculativeExecutor& ex) {
  using Type = MetricsRegistry::Type;
  const ExecutorTotals& t = ex.totals();
  // Round counters carry the scheduler backend as a label so dashboards
  // can split abort/commit behavior by draw strategy (README "Scheduler
  // backends"); check_metrics.py reconciles by summing over all samples,
  // so the label is invariant-transparent.
  const MetricsRegistry::Labels sched_label{
      {"scheduler", sched::backend_name(ex.scheduler_backend())}};
  reg.add("optipar_rounds_total", Type::kCounter, "Executor rounds run",
          sched_label, static_cast<double>(t.rounds));
  reg.add("optipar_launched_total", Type::kCounter,
          "Speculative tasks launched", sched_label,
          static_cast<double>(t.launched));
  reg.add("optipar_committed_total", Type::kCounter, "Tasks committed",
          sched_label, static_cast<double>(t.committed));
  reg.add("optipar_aborted_total", Type::kCounter,
          "Tasks aborted (conflicted or faulted)", sched_label,
          static_cast<double>(t.aborted));
  reg.add("optipar_retried_total", Type::kCounter,
          "Faulted tasks requeued with backoff", sched_label,
          static_cast<double>(t.retried));
  reg.add("optipar_quarantined_total", Type::kCounter,
          "Tasks moved to the dead-letter list", sched_label,
          static_cast<double>(t.quarantined));
  reg.add("optipar_dead_letters", Type::kGauge,
          "Tasks currently quarantined", {},
          static_cast<double>(ex.dead_letters().size()));
  reg.add("optipar_pool_failures_total", Type::kCounter,
          "Rounds in which a pool lane died", {},
          static_cast<double>(ex.pool_failures()));
  reg.add("optipar_serial_degraded", Type::kGauge,
          "1 once the executor pinned itself to the serial path", {},
          ex.serial_degraded() ? 1.0 : 0.0);
  reg.add("optipar_wasted_fraction", Type::kGauge,
          "aborted / launched over the whole run", {}, t.wasted_fraction());
}

/// Write `reg` to `path`: JSON when the extension is .json, Prometheus
/// text exposition otherwise.
void write_metrics_file(const std::string& path, const MetricsRegistry& reg) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open --metrics-out=" + path);
  if (path.size() >= 5 && path.rfind(".json") == path.size() - 5) {
    reg.render_json(os);
  } else {
    reg.render_prometheus(os);
  }
}

/// Write the structured trace: per-round StepRecord lines (plus the
/// summary), then the drained sub-round telemetry events.
void write_trace_file(const std::string& path, const Trace* trace,
                      telemetry::RuntimeTelemetry* tel) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open --trace-out=" + path);
  if (trace != nullptr) write_trace_jsonl(os, *trace);
  if (tel != nullptr) {
    const auto events = tel->drain_events();
    telemetry::write_events_jsonl(os, events);
  }
}

/// Write the span timeline as a Chrome trace-event JSON document.
void write_chrome_trace_file(const std::string& path,
                             const telemetry::SpanCollector& spans) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open --trace-chrome=" + path);
  spans.export_chrome(os);
}

/// Route injector firings into the telemetry event stream. The hook runs on
/// pool lanes and must not throw; emit() failures are swallowed.
void hook_injector(FaultInjector& injector, telemetry::RuntimeTelemetry& tel,
                   const SpeculativeExecutor& ex) {
  injector.set_fire_hook(
      [&tel, &ex](FaultSite site, std::uint64_t a, std::uint64_t b) {
        try {
          tel.emit({telemetry::EventKind::kFaultFired, 0, ex.round_index(),
                    a, b, 0.0, 0.0, fault_site_name(site)});
        } catch (...) {
        }
      });
}

CsrGraph make_graph(const Options& opt, Rng& rng) {
  const std::string family = opt.get("family", "gnm");
  const auto n = static_cast<NodeId>(opt.get_int("n", 2000));
  const double d = opt.get_double("d", 16.0);
  if (family == "gnm") return gen::random_with_average_degree(n, d, rng);
  if (family == "gnp") {
    return gen::gnp_random(n, d / static_cast<double>(n - 1), rng);
  }
  if (family == "cliques") {
    return gen::union_of_cliques(n - n % (static_cast<NodeId>(d) + 1),
                                 static_cast<std::uint32_t>(d));
  }
  if (family == "regular") {
    return gen::random_regular(n, static_cast<std::uint32_t>(d), rng);
  }
  if (family == "grid") {
    const auto side = static_cast<NodeId>(std::sqrt(double(n)));
    return gen::grid_2d(side, side);
  }
  if (family == "rmat") {
    return gen::rmat(n, static_cast<std::uint64_t>(n * d / 2), 0.55, 0.15,
                     0.15, rng);
  }
  if (family == "ba") {
    return gen::barabasi_albert(n, static_cast<std::uint32_t>(d / 2), rng);
  }
  throw std::invalid_argument("unknown --family=" + family);
}

CsrGraph load_graph(const Options& opt, Rng& rng) {
  if (opt.has("graph")) return io::read_edge_list(opt.get("graph", ""));
  return make_graph(opt, rng);  // allow generating on the fly
}

/// Stream for the measurement phase, decorrelated from graph generation.
/// Without this, measuring a file generated with the same --seed would
/// REPLAY the generator's node-pair stream — e.g. every sampled pair of
/// tasks would be a conflict edge.
Rng measurement_rng(Rng& base) { return base.split(); }

/// Adaptive-engine knobs shared by `curve` and `mu`. Only consulted when
/// --epsilon is present; without it both subcommands keep the historical
/// fixed-trial draw stream byte-for-byte.
AdaptiveConfig adaptive_config(const Options& opt) {
  AdaptiveConfig cfg;
  cfg.epsilon = opt.get_double("epsilon", cfg.epsilon);
  cfg.max_sweeps = static_cast<std::uint32_t>(
      opt.get_int("max-trials", cfg.max_sweeps));
  cfg.min_samples = static_cast<std::uint32_t>(
      opt.get_int("min-samples", cfg.min_samples));
  cfg.batch_samples = static_cast<std::uint32_t>(
      opt.get_int("batch", cfg.batch_samples));
  cfg.antithetic = opt.get_bool("antithetic", cfg.antithetic);
  cfg.control_variates =
      opt.get_bool("control-variates", cfg.control_variates);
  cfg.relabel = parse_relabel_order(opt.get("relabel", "none"));
  return cfg;
}

int cmd_gen(const Options& opt) {
  Rng rng(opt.get_int("seed", 1));
  const auto g = make_graph(opt, rng);
  const std::string out = opt.get("out", "graph.txt");
  io::write_edge_list(g, out);
  std::cout << "wrote " << out << ": n=" << g.num_nodes() << " m="
            << g.num_edges() << " avg_degree=" << g.average_degree() << "\n";
  return 0;
}

int cmd_curve(const Options& opt) {
  Rng rng(opt.get_int("seed", 1));
  auto g = load_graph(opt, rng);
  ConflictCurve curve;
  telemetry::RuntimeTelemetry tel;
  MetricsRegistry reg;
  if (opt.has("epsilon")) {
    AdaptiveConfig cfg = adaptive_config(opt);
    if (telemetry_requested(opt)) cfg.timers = &tel.timers();
    auto adaptive = estimate_conflict_curve_adaptive(
        g, cfg, static_cast<std::uint64_t>(opt.get_int("seed", 1)));
    std::cout << "adaptive: epsilon=" << cfg.epsilon << " trials="
              << adaptive.sweeps << " samples=" << adaptive.samples
              << " converged=" << (adaptive.converged ? 1 : 0)
              << " worst_ci=" << adaptive.worst_ci << "@m="
              << adaptive.worst_m << " relabel="
              << relabel_order_name(cfg.relabel) << " clique_cv_coverage="
              << adaptive.clique_node_fraction << "\n";
    if (telemetry_requested(opt)) {
      using Type = MetricsRegistry::Type;
      reg.add("optipar_estimator_sweeps_total", Type::kCounter,
              "Permutation sweeps executed", {},
              static_cast<double>(adaptive.sweeps));
      reg.add("optipar_estimator_samples_total", Type::kCounter,
              "Statistical samples accumulated", {},
              static_cast<double>(adaptive.samples));
      reg.add("optipar_estimator_converged", Type::kGauge,
              "1 when worst_ci <= epsilon at stop", {},
              adaptive.converged ? 1.0 : 0.0);
      reg.add("optipar_estimator_worst_ci", Type::kGauge,
              "Max CI half-width on r(m) at stop", {}, adaptive.worst_ci);
      tel.emit({telemetry::EventKind::kRoundEnd, 0, 0, adaptive.sweeps,
                adaptive.samples, adaptive.worst_ci, cfg.epsilon,
                "adaptive-curve"});
    }
    curve = std::move(adaptive.curve);
  } else {
    if (opt.has("relabel")) {
      g = relabel(g, parse_relabel_order(opt.get("relabel", "none"))).graph;
    }
    const auto trials =
        static_cast<std::uint32_t>(opt.get_int("trials", 300));
    Rng measure = measurement_rng(rng);
    curve = estimate_conflict_curve(g, trials, measure);
  }
  Table t({"m", "r_bar", "ci95", "expected_committed"});
  const NodeId n = g.num_nodes();
  for (std::uint32_t m = 1; m <= n; m = std::max(m + 1, m * 5 / 4)) {
    t.add_row({static_cast<std::int64_t>(m), curve.r_bar(m),
               curve.r_bar_ci95(m), curve.expected_committed(m)});
  }
  t.print(std::cout);
  if (opt.has("csv")) t.write_csv(opt.get("csv", "curve.csv"));
  if (opt.has("metrics-out")) {
    tel.export_metrics(reg);
    write_metrics_file(opt.get("metrics-out", ""), reg);
  }
  if (opt.has("trace-out")) {
    write_trace_file(opt.get("trace-out", ""), nullptr, &tel);
  }
  return 0;
}

int cmd_mu(const Options& opt) {
  Rng rng(opt.get_int("seed", 1));
  auto g = load_graph(opt, rng);
  const double rho = opt.get_double("rho", 0.25);
  std::uint32_t mu = 1;
  telemetry::RuntimeTelemetry tel;
  MetricsRegistry reg;
  if (opt.has("epsilon")) {
    AdaptiveConfig cfg = adaptive_config(opt);
    if (telemetry_requested(opt)) cfg.timers = &tel.timers();
    const auto op = find_operating_point(
        g, rho, cfg, static_cast<std::uint64_t>(opt.get_int("seed", 1)));
    mu = op.mu;
    std::cout << "adaptive: epsilon=" << cfg.epsilon << " trials="
              << op.sweeps << " converged=" << (op.converged ? 1 : 0)
              << " r(mu)=" << op.r_at_mu << " ci=" << op.ci_at_mu
              << " relabel=" << relabel_order_name(cfg.relabel) << "\n";
    if (telemetry_requested(opt)) {
      using Type = MetricsRegistry::Type;
      reg.add("optipar_estimator_sweeps_total", Type::kCounter,
              "Permutation sweeps executed", {},
              static_cast<double>(op.sweeps));
      reg.add("optipar_estimator_converged", Type::kGauge,
              "1 when the CI target was met at stop", {},
              op.converged ? 1.0 : 0.0);
      reg.add("optipar_mu", Type::kGauge,
              "Estimated operating point mu(rho)", {},
              static_cast<double>(op.mu));
      tel.emit({telemetry::EventKind::kRoundEnd, 0, 0, op.sweeps, op.mu,
                op.r_at_mu, op.ci_at_mu, "adaptive-mu"});
    }
  } else {
    if (opt.has("relabel")) {
      g = relabel(g, parse_relabel_order(opt.get("relabel", "none"))).graph;
    }
    const auto trials =
        static_cast<std::uint32_t>(opt.get_int("trials", 400));
    Rng measure = measurement_rng(rng);
    mu = find_mu(g, rho, trials, measure);
  }
  std::cout << "n=" << g.num_nodes() << " d=" << g.average_degree()
            << " rho=" << rho << "\nmu ~= " << mu
            << "  (largest m with r_bar(m) <= rho)\n"
            << "theory warm start (Cor. 3, worst case): m0 = "
            << theory::warm_start_m(g.num_nodes(), g.average_degree(), rho)
            << "\n";
  if (opt.has("metrics-out")) {
    tel.export_metrics(reg);
    write_metrics_file(opt.get("metrics-out", ""), reg);
  }
  if (opt.has("trace-out")) {
    write_trace_file(opt.get("trace-out", ""), nullptr, &tel);
  }
  return 0;
}

int cmd_theory(const Options& opt) {
  const auto n = static_cast<std::uint32_t>(opt.get_int("n", 2000));
  const auto d = static_cast<std::uint32_t>(opt.get_int("d", 16));
  const std::uint32_t n_exact = n - n % (d + 1);
  std::cout << "n=" << n << " d=" << d << "\n"
            << "Turan bound (E[MIS] >=): " << theory::turan_bound(n, d)
            << "\ninitial derivative d/(2(n-1)): "
            << theory::initial_derivative(n, d) << "\n";
  Table t({"m", "EM_Kdn_exact", "bound_exact", "bound_cor2"});
  for (std::uint32_t m = 1; m <= n_exact;
       m = std::max(m + 1, m * 2)) {
    t.add_row({static_cast<std::int64_t>(m),
               theory::em_union_of_cliques(n_exact, d, m),
               theory::conflict_ratio_bound_exact(n_exact, d, m),
               theory::conflict_ratio_bound_approx(n, d, m)});
  }
  t.print(std::cout);
  return 0;
}

int cmd_control(const Options& opt) {
  Rng rng(opt.get_int("seed", 1));
  const auto g = load_graph(opt, rng);
  ControllerParams params;
  params.rho = opt.get_double("rho", 0.25);
  params.m0 = static_cast<std::uint32_t>(opt.get_int("m0", params.m0));
  params.m_max =
      static_cast<std::uint32_t>(opt.get_int("m-max", params.m_max));
  params.T = static_cast<std::uint32_t>(opt.get_int("T", params.T));
  if (opt.get_bool("warm-start", false)) {
    params = with_warm_start(params, g.num_nodes(), g.average_degree());
  }
  const std::string name = opt.get("controller", "hybrid");
  std::unique_ptr<Controller> controller = make_controller(name, params);
  if (!controller) {
    std::cerr << "unknown --controller=" << name << "\n";
    return 2;
  }

  StationaryWorkload workload(g);
  RunLoopConfig config;
  config.max_steps =
      static_cast<std::uint32_t>(opt.get_int("steps", 120));
  Rng measure = measurement_rng(rng);
  const auto trace = run_controlled(*controller, workload, config, measure);

  Table t({"step", "m", "launched", "committed", "aborted", "r"});
  for (const auto& s : trace.steps) {
    t.add_row({static_cast<std::int64_t>(s.step),
               static_cast<std::int64_t>(s.m),
               static_cast<std::int64_t>(s.launched),
               static_cast<std::int64_t>(s.committed),
               static_cast<std::int64_t>(s.aborted), s.conflict_ratio()});
  }
  t.print(std::cout);
  std::cout << "mean r = " << trace.mean_conflict_ratio()
            << ", wasted = " << trace.wasted_fraction() << "\n";
  if (opt.has("csv")) t.write_csv(opt.get("csv", "trace.csv"));
  return 0;
}

int cmd_chaos(const Options& opt) {
  // A fault-injected speculative run over the reference chaos workload
  // (random counter updates under abstract locks with undo), driven by the
  // adaptive closed loop. The run self-checks the §8 recovery invariants:
  // the shared state must equal the oracle restricted to non-quarantined
  // tasks, and no abstract lock may leak. Ends with one machine-parsable
  // summary line that scripts/run_chaos.sh asserts over.
  const auto tasks_n = static_cast<std::uint32_t>(opt.get_int("tasks", 400));
  const auto cells_n = static_cast<std::uint32_t>(opt.get_int("cells", 64));
  const auto threads = static_cast<std::size_t>(opt.get_int("threads", 4));
  const auto m0 = static_cast<std::uint32_t>(opt.get_int("m", 16));
  const auto seed = static_cast<std::uint64_t>(opt.get_int("seed", 1));
  const auto fault_seed =
      static_cast<std::uint64_t>(opt.get_int("fault-seed", 42));
  const double rate = opt.get_double("fault-rate", 0.0);
  const double delay_rate = opt.get_double("delay-rate", rate / 2.0);
  const double rollback_rate = opt.get_double("rollback-rate", rate / 4.0);
  const double lock_rate = opt.get_double("lock-rate", rate / 4.0);
  const double lane_rate = opt.get_double("lane-rate", 0.0);

  // Per-task effects and their sequential oracle.
  Rng gen_rng(seed);
  struct Effect {
    std::uint32_t first;
    std::uint32_t count;
    std::int64_t delta;
  };
  std::vector<Effect> effects(tasks_n);
  for (auto& e : effects) {
    e.first = static_cast<std::uint32_t>(gen_rng.below(cells_n));
    e.count = 1 + static_cast<std::uint32_t>(gen_rng.below(4));
    e.delta = gen_rng.between(-5, 5);
  }

  const auto backend = parse_scheduler(opt);
  if (!backend) return usage();

  std::vector<std::int64_t> cells(cells_n, 0);
  ThreadPool pool(threads);
  RoundOptions ropts;
  ropts.scheduler = *backend;
  SpeculativeExecutor ex(
      pool, cells_n,
      [&](TaskId t, IterationContext& ctx) {
        const Effect& e = effects[t];
        for (std::uint32_t i = 0; i < e.count; ++i) {
          const std::uint32_t cell = (e.first + i) % cells_n;
          ctx.acquire(cell);
          cells[cell] += e.delta;
          ctx.on_abort([&cells, cell, d = e.delta] { cells[cell] -= d; });
        }
      },
      seed * 7 + 1, ropts);
  if (*backend == sched::Backend::kChromatic) {
    ex.set_footprint_function(
        [&effects, cells_n](TaskId t, std::vector<std::uint32_t>& fp) {
          const Effect& e = effects[t];
          for (std::uint32_t i = 0; i < e.count; ++i) {
            fp.push_back((e.first + i) % cells_n);
          }
        });
  } else if (*backend == sched::Backend::kRelaxed) {
    ex.set_priority_function([](TaskId t) { return t; });
  }
  // --threads asks for that many lanes outright (lane-death injection
  // needs parallel lanes even on small hosts); the core-count cap is for
  // un-tuned production runs, not the chaos harness.
  ex.set_pipeline({.max_lanes = threads});

  FaultInjector injector(fault_seed);
  injector.set_rate(FaultSite::kOperatorThrow, rate);
  injector.set_rate(FaultSite::kOperatorDelay, delay_rate);
  injector.set_rate(FaultSite::kRollbackInverse, rollback_rate);
  injector.set_rate(FaultSite::kLockAcquire, lock_rate);
  injector.set_rate(FaultSite::kPoolLane, lane_rate);
  ex.set_fault_injector(&injector);

  FailurePolicy policy;
  policy.max_retries =
      static_cast<std::uint32_t>(opt.get_int("max-retries", 3));
  policy.backoff_base_rounds =
      static_cast<std::uint32_t>(opt.get_int("backoff-base", 1));
  policy.backoff_cap_rounds =
      static_cast<std::uint32_t>(opt.get_int("backoff-cap", 16));
  policy.max_pool_failures =
      static_cast<std::uint32_t>(opt.get_int("max-pool-failures", 2));
  ex.set_failure_policy(policy);

  telemetry::RuntimeTelemetry tel;
  telemetry::SpanCollector spans;
  if (telemetry_requested(opt)) {
    tel.set_target_rho(opt.get_double("rho", 0.25));
    if (opt.has("trace-chrome")) tel.set_spans(&spans);
    ex.set_telemetry(&tel);
    hook_injector(injector, tel, ex);
  }

  std::vector<TaskId> tasks(tasks_n);
  std::iota(tasks.begin(), tasks.end(), TaskId{0});
  ex.push_initial(tasks);

  ControllerParams params;
  params.rho = opt.get_double("rho", 0.25);
  params.m0 = m0;
  params.m_max =
      static_cast<std::uint32_t>(opt.get_int("m-max", params.m_max));
  HybridController controller(params);
  AdaptiveRunConfig config;
  config.max_rounds =
      static_cast<std::uint32_t>(opt.get_int("rounds", 100000));
  config.deadline = JobDeadline::after_ms(opt.get_int("timeout-ms", 0));

  bool livelock = false;
  Trace trace;
  try {
    trace = run_adaptive(ex, controller, config);
  } catch (const JobInterrupted& e) {
    // An expired --timeout-ms leaves the run incomplete by design; the
    // recovery invariants below would fail vacuously, so report the
    // interruption as its own typed outcome instead.
    std::cerr << "deadline: " << e.what() << "\n";
    return kExitDeadline;
  } catch (const LivelockError& e) {
    livelock = true;
    // Keep the partial trace: the stalling round's record and the kLivelock
    // event land in --trace-out instead of vanishing with the unwind.
    trace = e.partial_trace;
    std::cerr << "livelock: " << e.what() << "\n";
  }

  // Dead-letter report.
  if (!ex.dead_letters().empty()) {
    std::cout << "dead letters (" << ex.dead_letters().size() << "):\n";
    for (const auto& dl : ex.dead_letters()) {
      std::cout << "  task " << dl.task << " after " << dl.attempts
                << " attempts: " << dl.error << "\n";
    }
  }

  // Recovery invariants: state equals the oracle over non-quarantined
  // tasks, every task is accounted for, and no abstract lock leaked.
  std::vector<bool> quarantined(tasks_n, false);
  for (const auto& dl : ex.dead_letters()) quarantined[dl.task] = true;
  std::vector<std::int64_t> oracle(cells_n, 0);
  for (std::uint32_t t = 0; t < tasks_n; ++t) {
    if (quarantined[t]) continue;
    for (std::uint32_t i = 0; i < effects[t].count; ++i) {
      oracle[(effects[t].first + i) % cells_n] += effects[t].delta;
    }
  }
  const bool state_ok = cells == oracle;
  const std::size_t lock_leaks = ex.locks().owned_count();
  const bool accounted =
      ex.totals().committed + ex.dead_letters().size() == tasks_n;
  const bool ok =
      state_ok && lock_leaks == 0 && (accounted || livelock) && !livelock;

  // --verify: the same facts as the inline invariants, restated through the
  // typed certifier so the verdict reaches telemetry (kCertify event,
  // "certify" span) and the exit-code taxonomy. Oracle divergence that the
  // drain certificate cannot see maps to kStateCorrupt.
  const bool do_verify = opt.get_bool("verify", false);
  std::optional<verify::Certificate> cert;
  if (do_verify) {
    cert = verify::run_certifier(
        [&ex, &state_ok, tasks_n] {
          verify::Certificate c = verify::certify_drained_run(ex, tasks_n);
          if (c.ok() && !state_ok) {
            c.code = verify::CertCode::kStateCorrupt;
            c.detail = "cells diverge from the sequential oracle";
          } else if (c.ok()) {
            ++c.checked;  // the oracle comparison above
          }
          return c;
        },
        telemetry_requested(opt) ? &tel : nullptr,
        static_cast<std::uint64_t>(trace.steps.size()));
  }

  if (opt.has("metrics-out")) {
    MetricsRegistry reg;
    tel.export_metrics(reg);
    export_executor_metrics(reg, ex);
    if (cert.has_value()) verify::export_certificate_metrics(reg, *cert);
    write_metrics_file(opt.get("metrics-out", ""), reg);
  }
  if (opt.has("trace-out")) {
    write_trace_file(opt.get("trace-out", ""), &trace,
                     telemetry_requested(opt) ? &tel : nullptr);
  }
  if (opt.has("trace-chrome")) {
    write_chrome_trace_file(opt.get("trace-chrome", ""), spans);
  }

  std::cout << "CHAOS"
            << " fault_seed=" << fault_seed << " fault_rate=" << rate
            << " rounds=" << trace.steps.size()
            << " launched=" << ex.totals().launched
            << " committed=" << ex.totals().committed
            << " aborted=" << ex.totals().aborted
            << " retried=" << ex.totals().retried
            << " quarantined=" << ex.totals().quarantined
            << " injected=" << trace.total_injected()
            << " dead_letters=" << ex.dead_letters().size()
            << " pool_failures=" << ex.pool_failures()
            << " degraded=" << (ex.serial_degraded() ? 1 : 0)
            << " watchdog=" << (trace.watchdog_fired() ? 1 : 0)
            << " livelock=" << (livelock ? 1 : 0)
            << " lock_leaks=" << lock_leaks
            << " state=" << (state_ok ? "ok" : "corrupt")
            << " verdict=" << (ok ? "pass" : "fail");
  if (do_verify) {
    std::cout << " certified="
              << (cert->ok() ? "ok" : verify::cert_code_name(cert->code));
  }
  std::cout << "\n";
  if (!ok) return kExitError;
  if (do_verify && !cert->ok()) {
    std::cerr << "certification failed: " << cert->describe() << "\n";
    return kExitCertification;
  }
  return kExitOk;
}

CrashPoint parse_crash_point(const std::string& name) {
  if (name == "none") return CrashPoint::kNone;
  if (name == "mid-journal") return CrashPoint::kMidJournalWrite;
  if (name == "after-journal") return CrashPoint::kAfterJournalAppend;
  if (name == "mid-snapshot") return CrashPoint::kMidSnapshotWrite;
  if (name == "before-rename") return CrashPoint::kBeforeSnapshotRename;
  if (name == "after-rename") return CrashPoint::kAfterSnapshotRename;
  throw std::invalid_argument("unknown --crash-point=" + name);
}

/// `run --app=<name>`: one of the seven application kernels end to end —
/// generated input, adaptive speculative run on the chosen backend, and an
/// ALWAYS-ON independent result certificate (verify/harness.hpp). One
/// machine-parsable APPRUN summary line; a refuted certificate exits 8.
int cmd_run_app(const Options& opt) {
  const std::string name = opt.get("app", "");
  const auto app = verify::parse_app(name);
  if (!app) {
    std::cerr << "unknown --app=" << name
              << " (expected mis|coloring|sssp|boruvka|maxflow|sp|dmr)\n";
    return kExitUsage;
  }
  const auto backend = parse_scheduler(opt);
  if (!backend) return usage();

  verify::AppRunOptions options;
  options.nodes = static_cast<std::uint32_t>(opt.get_int("n", 300));
  options.degree = static_cast<std::uint32_t>(opt.get_int("d", 8));
  options.seed = static_cast<std::uint64_t>(opt.get_int("seed", 1));
  options.scheduler = *backend;
  options.controller = opt.get("controller", "hybrid");
  options.rho = opt.get_double("rho", 0.25);
  options.max_rounds =
      static_cast<std::uint32_t>(opt.get_int("steps", 200000));

  telemetry::RuntimeTelemetry tel;
  tel.set_target_rho(options.rho);
  if (telemetry_requested(opt)) options.telemetry = &tel;

  ThreadPool pool(static_cast<std::size_t>(opt.get_int("threads", 4)));
  const verify::AppRunReport report =
      verify::run_app_certified(*app, pool, options);

  if (opt.has("metrics-out")) {
    MetricsRegistry reg;
    tel.export_metrics(reg);
    verify::export_certificate_metrics(reg, report.certificate);
    write_metrics_file(opt.get("metrics-out", ""), reg);
  }
  if (opt.has("trace-out")) {
    write_trace_file(opt.get("trace-out", ""), &report.trace,
                     telemetry_requested(opt) ? &tel : nullptr);
  }

  const verify::Certificate& cert = report.certificate;
  std::cout << "APPRUN app=" << verify::app_name(*app)
            << " scheduler=" << sched::backend_name(*backend)
            << " controller=" << options.controller
            << " rounds=" << report.rounds
            << " launched=" << report.launched
            << " committed=" << report.committed
            << " aborted=" << report.aborted
            << " answer=" << report.answer
            << " checked=" << cert.checked << " certified="
            << (cert.ok() ? "ok" : verify::cert_code_name(cert.code))
            << "\n";
  if (!cert.ok()) {
    std::cerr << "certification failed: " << cert.describe() << "\n";
    return kExitCertification;
  }
  return kExitOk;
}

int cmd_run(const Options& opt) {
  if (opt.has("app")) return cmd_run_app(opt);
  // The paper's closed loop on the REAL runtime (not the step simulator):
  // one task per graph node, each acquiring its closed neighborhood — so
  // two tasks conflict iff their nodes are adjacent, which is exactly the
  // CC-graph semantics the model analyzes. Tasks drain (commit removes
  // them), the controller adapts m round by round, and the telemetry layer
  // observes every phase.
  Rng rng(opt.get_int("seed", 1));
  const auto g = load_graph(opt, rng);
  const auto threads = static_cast<std::size_t>(opt.get_int("threads", 4));
  const auto seed = static_cast<std::uint64_t>(opt.get_int("seed", 1));

  ControllerParams params;
  params.rho = opt.get_double("rho", 0.25);
  params.m0 = static_cast<std::uint32_t>(opt.get_int("m0", params.m0));
  params.m_max =
      static_cast<std::uint32_t>(opt.get_int("m-max", params.m_max));
  if (opt.get_bool("warm-start", false)) {
    params = with_warm_start(params, g.num_nodes(), g.average_degree());
  }
  const std::string name = opt.get("controller", "hybrid");
  std::unique_ptr<Controller> controller = make_controller(name, params);
  if (!controller) {
    std::cerr << "unknown --controller=" << name << "\n";
    return 2;
  }
  const auto backend = parse_scheduler(opt);
  if (!backend) return usage();

  ThreadPool pool(threads);
  RoundOptions ropts;
  ropts.scheduler = *backend;
  SpeculativeExecutor ex(
      pool, g.num_nodes(),
      [&g](TaskId t, IterationContext& ctx) {
        const auto v = static_cast<NodeId>(t);
        ctx.acquire(v);
        for (const NodeId u : g.neighbors(v)) ctx.acquire(u);
      },
      seed * 11 + 3, ropts);
  if (*backend == sched::Backend::kChromatic) {
    // Declared footprint mirrors the operator: the closed neighborhood.
    ex.set_footprint_function(
        [&g](TaskId t, std::vector<std::uint32_t>& fp) {
          const auto v = static_cast<NodeId>(t);
          fp.push_back(v);
          for (const NodeId u : g.neighbors(v)) fp.push_back(u);
        });
  } else if (*backend == sched::Backend::kRelaxed) {
    ex.set_priority_function([](TaskId t) { return t; });
  }

  telemetry::RuntimeTelemetry tel;
  tel.set_target_rho(params.rho);
  // Span tracing is explicit opt-in: the collector's extra clock reads sit
  // outside the plain-telemetry overhead budget the sentinel enforces.
  telemetry::SpanCollector spans;
  if (opt.has("trace-chrome")) tel.set_spans(&spans);
  ex.set_telemetry(&tel);  // `run` exists to observe: always attached

  std::vector<TaskId> tasks(g.num_nodes());
  std::iota(tasks.begin(), tasks.end(), TaskId{0});
  ex.push_initial(tasks);

  AdaptiveRunConfig config;
  config.max_rounds =
      static_cast<std::uint32_t>(opt.get_int("steps", 100000));
  // Wall-clock budget, checked at round boundaries (the same JobDeadline
  // the serve daemon applies per job). Expiry exits with kExitDeadline
  // after a forced checkpoint when --checkpoint-dir is armed, so a timed-
  // out run is resumable with --resume.
  config.deadline = JobDeadline::after_ms(opt.get_int("timeout-ms", 0));

  std::unique_ptr<CheckpointManager> checkpoint;
  if (opt.has("checkpoint-dir")) {
    const std::string dir = opt.get("checkpoint-dir", "");
    ::mkdir(dir.c_str(), 0755);  // best effort; the journal open reports
    if (!opt.get_bool("resume", false)) {
      // A fresh (non---resume) run must not inherit a previous run's
      // snapshots: silently resuming someone else's state would be the
      // "silently wrong" failure mode the ladder exists to prevent.
      for (const char* f : {"/snap-a.bin", "/snap-b.bin", "/journal.bin",
                            "/snap-a.bin.tmp", "/snap-b.bin.tmp"}) {
        std::remove((dir + f).c_str());
      }
    }
    CheckpointConfig ccfg;
    ccfg.dir = dir;
    ccfg.every =
        static_cast<std::uint32_t>(opt.get_int("checkpoint-every", 8));
    ccfg.crash_point = parse_crash_point(opt.get("crash-point", "none"));
    ccfg.crash_round =
        static_cast<std::uint32_t>(opt.get_int("crash-round", 0));
    checkpoint = std::make_unique<CheckpointManager>(ccfg,
                                                     graph_fingerprint(g));
    checkpoint->set_telemetry(&tel);
    config.checkpoint = checkpoint.get();
  }

  // --verify: certify the drained run (every task accounted for, no lock
  // leaks) through the AdaptiveRun certify hook; the verdict lands in the
  // telemetry stream (kCertify event + "certify" span) and the summary
  // line, and a refuted certificate exits 8. Off-path stays byte-identical:
  // the stepper below IS run_adaptive's loop.
  const bool do_verify = opt.get_bool("verify", false);
  if (do_verify) {
    config.certifier = [&ex, total = static_cast<std::uint64_t>(
                                 g.num_nodes())] {
      return verify::certify_drained_run(ex, total);
    };
  }

  bool livelock = false;
  bool deadline_exceeded = false;
  Trace trace;
  std::optional<verify::Certificate> cert;
  try {
    AdaptiveRun run(ex, *controller, config);
    while (run.step()) {
    }
    run.ensure_certified();
    cert = run.certificate();
    trace = run.take_trace();
  } catch (const LivelockError& e) {
    livelock = true;
    trace = e.partial_trace;
    std::cerr << "livelock: " << e.what() << "\n";
  } catch (const JobInterrupted& e) {
    deadline_exceeded = true;
    trace = e.partial_trace;
    std::cerr << "deadline: " << e.what() << "\n";
  }

  Table t({"step", "m", "launched", "committed", "aborted", "pending", "r"});
  for (const auto& s : trace.steps) {
    t.add_row({static_cast<std::int64_t>(s.step),
               static_cast<std::int64_t>(s.m),
               static_cast<std::int64_t>(s.launched),
               static_cast<std::int64_t>(s.committed),
               static_cast<std::int64_t>(s.aborted),
               static_cast<std::int64_t>(s.pending_after),
               s.conflict_ratio()});
  }
  t.print(std::cout);
  std::cout << "rounds=" << trace.steps.size()
            << " committed=" << ex.totals().committed
            << " wasted=" << trace.wasted_fraction()
            << " mean_r=" << trace.mean_conflict_ratio()
            << " drained=" << (ex.done() ? 1 : 0)
            << " livelock=" << (livelock ? 1 : 0);
  if (do_verify) {
    std::cout << " certified="
              << (cert.has_value()
                      ? (cert->ok() ? "ok" : verify::cert_code_name(cert->code))
                      : "none");
  }
  std::cout << "\n";
  if (do_verify && cert.has_value() && !cert->ok()) {
    std::cerr << "certification failed: " << cert->describe() << "\n";
  }
  if (opt.has("csv")) t.write_csv(opt.get("csv", "run.csv"));
  if (opt.has("metrics-out")) {
    MetricsRegistry reg;
    tel.export_metrics(reg);
    export_executor_metrics(reg, ex);
    write_metrics_file(opt.get("metrics-out", ""), reg);
  }
  if (opt.has("trace-out")) {
    write_trace_file(opt.get("trace-out", ""), &trace, &tel);
  }
  if (opt.has("trace-chrome")) {
    write_chrome_trace_file(opt.get("trace-chrome", ""), spans);
  }
  if (livelock) return kExitLivelock;
  if (deadline_exceeded) return kExitDeadline;
  if (do_verify && (!cert.has_value() || !cert->ok())) {
    return kExitCertification;
  }
  return kExitOk;
}

int cmd_profile(const Options& opt) {
  // Conflict-attribution profile (DESIGN.md §15): the same closed loop as
  // `run`, with the per-item profiler attached — WHICH graph regions kill
  // speculative work, and does contention concentrate on high-degree
  // nodes? At --sample-period=1 and one lane the report is exactly
  // reproducible run-to-run (the CI trace-smoke job diffs two runs).
  Rng rng(opt.get_int("seed", 1));
  const auto g = load_graph(opt, rng);
  const auto threads = static_cast<std::size_t>(opt.get_int("threads", 4));
  const auto seed = static_cast<std::uint64_t>(opt.get_int("seed", 1));

  ControllerParams params;
  params.rho = opt.get_double("rho", 0.25);
  params.m0 = static_cast<std::uint32_t>(opt.get_int("m0", params.m0));
  params.m_max =
      static_cast<std::uint32_t>(opt.get_int("m-max", params.m_max));
  const std::string name = opt.get("controller", "hybrid");
  std::unique_ptr<Controller> controller = make_controller(name, params);
  if (!controller) {
    std::cerr << "unknown --controller=" << name << "\n";
    return 2;
  }
  const auto backend = parse_scheduler(opt);
  if (!backend) return usage();

  ThreadPool pool(threads);
  RoundOptions ropts;
  ropts.scheduler = *backend;
  SpeculativeExecutor ex(
      pool, g.num_nodes(),
      [&g](TaskId t, IterationContext& ctx) {
        const auto v = static_cast<NodeId>(t);
        ctx.acquire(v);
        for (const NodeId u : g.neighbors(v)) ctx.acquire(u);
      },
      seed * 11 + 3, ropts);
  if (*backend == sched::Backend::kChromatic) {
    ex.set_footprint_function(
        [&g](TaskId t, std::vector<std::uint32_t>& fp) {
          const auto v = static_cast<NodeId>(t);
          fp.push_back(v);
          for (const NodeId u : g.neighbors(v)) fp.push_back(u);
        });
  } else if (*backend == sched::Backend::kRelaxed) {
    ex.set_priority_function([](TaskId t) { return t; });
  }

  telemetry::RuntimeTelemetry tel;
  tel.set_target_rho(params.rho);
  telemetry::ConflictProfiler prof(
      g.num_nodes(),
      static_cast<std::uint32_t>(opt.get_int("sample-period", 1)));
  std::vector<std::uint32_t> degrees(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) degrees[v] = g.degree(v);
  prof.set_degrees(std::move(degrees));
  tel.set_profiler(&prof);
  ex.set_telemetry(&tel);

  std::vector<TaskId> tasks(g.num_nodes());
  std::iota(tasks.begin(), tasks.end(), TaskId{0});
  ex.push_initial(tasks);

  AdaptiveRunConfig config;
  config.max_rounds =
      static_cast<std::uint32_t>(opt.get_int("steps", 100000));
  config.deadline = JobDeadline::after_ms(opt.get_int("timeout-ms", 0));

  Trace trace;
  try {
    trace = run_adaptive(ex, *controller, config);
  } catch (const LivelockError& e) {
    trace = e.partial_trace;
    std::cerr << "livelock: " << e.what() << "\n";
  } catch (const JobInterrupted& e) {
    trace = e.partial_trace;
    std::cerr << "deadline: " << e.what() << "\n";
  }

  const auto k = static_cast<std::size_t>(opt.get_int("top", 16));
  prof.write_report(std::cout, k);
  std::cout << "scheduler=" << sched::backend_name(ex.scheduler_backend())
            << " rounds=" << trace.steps.size()
            << " committed=" << ex.totals().committed
            << " mean_r=" << trace.mean_conflict_ratio()
            << " top" << k << "_share=" << prof.top_share(k) << "\n";
  if (opt.has("out")) {
    const std::string out = opt.get("out", "");
    std::ofstream os(out);
    if (!os) throw std::runtime_error("cannot open --out=" + out);
    prof.write_json(os, k);
  }
  return kExitOk;
}

int cmd_metrics(const Options& opt) {
  // Scrape-surface demo: run a small deterministic workload with telemetry
  // attached and print the export. The counter values are reproducible
  // (fixed seed, fixed graph); the phase timings naturally are not.
  const auto threads = static_cast<std::size_t>(opt.get_int("threads", 2));
  const auto seed = static_cast<std::uint64_t>(opt.get_int("seed", 12345));
  const CsrGraph g = gen::union_of_cliques(60, 5);

  ThreadPool pool(threads);
  SpeculativeExecutor ex(
      pool, g.num_nodes(),
      [&g](TaskId t, IterationContext& ctx) {
        const auto v = static_cast<NodeId>(t);
        ctx.acquire(v);
        for (const NodeId u : g.neighbors(v)) ctx.acquire(u);
      },
      seed);

  telemetry::RuntimeTelemetry tel;
  tel.set_target_rho(0.25);
  ex.set_telemetry(&tel);

  std::vector<TaskId> tasks(g.num_nodes());
  std::iota(tasks.begin(), tasks.end(), TaskId{0});
  ex.push_initial(tasks);

  ControllerParams params;
  params.rho = 0.25;
  HybridController controller(params);
  const Trace trace = run_adaptive(ex, controller, {});
  (void)trace;

  MetricsRegistry reg;
  tel.export_metrics(reg);
  export_executor_metrics(reg, ex);
  const std::string format = opt.get("format", "prometheus");
  if (format == "json") {
    reg.render_json(std::cout);
  } else if (format == "prometheus") {
    reg.render_prometheus(std::cout);
  } else {
    std::cerr << "unknown --format=" << format << " (prometheus|json)\n";
    return 2;
  }
  return 0;
}

int cmd_seating(const Options& opt) {
  const auto n = static_cast<std::uint32_t>(opt.get_int("n", 1000));
  std::cout << "unfriendly seating, n=" << n << "\n"
            << "path  E[MIS] = " << seating::expected_path(n)
            << " (density " << seating::expected_path(n) / n << ")\n"
            << "cycle E[MIS] = " << seating::expected_cycle(std::max(3u, n))
            << "\nlimit density (1-e^-2)/2 = " << seating::path_density_limit()
            << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const Options opt(argc - 1, argv + 1);
  try {
    if (command == "gen") return cmd_gen(opt);
    if (command == "curve") return cmd_curve(opt);
    if (command == "mu") return cmd_mu(opt);
    if (command == "theory") return cmd_theory(opt);
    if (command == "control") return cmd_control(opt);
    if (command == "seating") return cmd_seating(opt);
    if (command == "chaos") return cmd_chaos(opt);
    if (command == "run") return cmd_run(opt);
    if (command == "metrics") return cmd_metrics(opt);
    if (command == "profile") return cmd_profile(opt);
  } catch (const io::GraphIoError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return kExitGraphIo;
  } catch (const snapshot::SnapshotError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return kExitSnapshot;
  } catch (const LivelockError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return kExitLivelock;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return kExitError;
  }
  return usage();
}
