// optipar command-line tool — the library's functionality without writing
// C++: generate CC graphs, estimate conflict-ratio curves, locate operating
// points, evaluate the paper's bounds, and run controllers.
//
//   optipar_cli gen     --family=gnm --n=2000 --d=16 --seed=1 --out=g.txt
//   optipar_cli curve   --graph=g.txt --trials=300 [--csv=curve.csv]
//                       [--epsilon=0.005 --max-trials=100000
//                        --relabel=none|bfs|degree] (adaptive engine:
//                       run until every r̄(m) CI half-width <= epsilon)
//   optipar_cli mu      --graph=g.txt --rho=0.25 [--epsilon= --max-trials=
//                       --relabel=]
//   optipar_cli theory  --n=2000 --d=16 [--m=100]
//   optipar_cli control --graph=g.txt --controller=hybrid --rho=0.25
//                       --steps=120 [--csv=trace.csv]
//   optipar_cli seating --n=1000   (unfriendly seating reference numbers)
//   optipar_cli chaos   --tasks=400 --threads=4 --fault-seed=42
//                       --fault-rate=0.2 --max-retries=3
//                       (fault-injected speculative run; DESIGN.md §8)
#include <cmath>
#include <iostream>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "control/baselines.hpp"
#include "control/extra.hpp"
#include "control/hybrid.hpp"
#include "control/recurrence.hpp"
#include "graph/generators.hpp"
#include "graph/graph_io.hpp"
#include "graph/relabel.hpp"
#include "model/adaptive_estimator.hpp"
#include "model/conflict_ratio.hpp"
#include "model/seating.hpp"
#include "model/theory.hpp"
#include "rt/adaptive_executor.hpp"
#include "rt/fault_injector.hpp"
#include "rt/spec_executor.hpp"
#include "sim/run_loop.hpp"
#include "support/csv.hpp"
#include "support/failure_policy.hpp"
#include "support/options.hpp"
#include "support/thread_pool.hpp"

namespace {

using namespace optipar;

int usage() {
  std::cerr <<
      "usage: optipar_cli <gen|curve|mu|theory|control|seating|chaos>"
      " [--options]\n"
      "run with a subcommand and no options to see its parameters\n";
  return 2;
}

CsrGraph make_graph(const Options& opt, Rng& rng) {
  const std::string family = opt.get("family", "gnm");
  const auto n = static_cast<NodeId>(opt.get_int("n", 2000));
  const double d = opt.get_double("d", 16.0);
  if (family == "gnm") return gen::random_with_average_degree(n, d, rng);
  if (family == "gnp") {
    return gen::gnp_random(n, d / static_cast<double>(n - 1), rng);
  }
  if (family == "cliques") {
    return gen::union_of_cliques(n - n % (static_cast<NodeId>(d) + 1),
                                 static_cast<std::uint32_t>(d));
  }
  if (family == "regular") {
    return gen::random_regular(n, static_cast<std::uint32_t>(d), rng);
  }
  if (family == "grid") {
    const auto side = static_cast<NodeId>(std::sqrt(double(n)));
    return gen::grid_2d(side, side);
  }
  if (family == "rmat") {
    return gen::rmat(n, static_cast<std::uint64_t>(n * d / 2), 0.55, 0.15,
                     0.15, rng);
  }
  if (family == "ba") {
    return gen::barabasi_albert(n, static_cast<std::uint32_t>(d / 2), rng);
  }
  throw std::invalid_argument("unknown --family=" + family);
}

CsrGraph load_graph(const Options& opt, Rng& rng) {
  if (opt.has("graph")) return io::read_edge_list(opt.get("graph", ""));
  return make_graph(opt, rng);  // allow generating on the fly
}

/// Stream for the measurement phase, decorrelated from graph generation.
/// Without this, measuring a file generated with the same --seed would
/// REPLAY the generator's node-pair stream — e.g. every sampled pair of
/// tasks would be a conflict edge.
Rng measurement_rng(Rng& base) { return base.split(); }

/// Adaptive-engine knobs shared by `curve` and `mu`. Only consulted when
/// --epsilon is present; without it both subcommands keep the historical
/// fixed-trial draw stream byte-for-byte.
AdaptiveConfig adaptive_config(const Options& opt) {
  AdaptiveConfig cfg;
  cfg.epsilon = opt.get_double("epsilon", cfg.epsilon);
  cfg.max_sweeps = static_cast<std::uint32_t>(
      opt.get_int("max-trials", cfg.max_sweeps));
  cfg.min_samples = static_cast<std::uint32_t>(
      opt.get_int("min-samples", cfg.min_samples));
  cfg.batch_samples = static_cast<std::uint32_t>(
      opt.get_int("batch", cfg.batch_samples));
  cfg.antithetic = opt.get_bool("antithetic", cfg.antithetic);
  cfg.control_variates =
      opt.get_bool("control-variates", cfg.control_variates);
  cfg.relabel = parse_relabel_order(opt.get("relabel", "none"));
  return cfg;
}

int cmd_gen(const Options& opt) {
  Rng rng(opt.get_int("seed", 1));
  const auto g = make_graph(opt, rng);
  const std::string out = opt.get("out", "graph.txt");
  io::write_edge_list(g, out);
  std::cout << "wrote " << out << ": n=" << g.num_nodes() << " m="
            << g.num_edges() << " avg_degree=" << g.average_degree() << "\n";
  return 0;
}

int cmd_curve(const Options& opt) {
  Rng rng(opt.get_int("seed", 1));
  auto g = load_graph(opt, rng);
  ConflictCurve curve;
  if (opt.has("epsilon")) {
    const AdaptiveConfig cfg = adaptive_config(opt);
    auto adaptive = estimate_conflict_curve_adaptive(
        g, cfg, static_cast<std::uint64_t>(opt.get_int("seed", 1)));
    std::cout << "adaptive: epsilon=" << cfg.epsilon << " trials="
              << adaptive.sweeps << " samples=" << adaptive.samples
              << " converged=" << (adaptive.converged ? 1 : 0)
              << " worst_ci=" << adaptive.worst_ci << "@m="
              << adaptive.worst_m << " relabel="
              << relabel_order_name(cfg.relabel) << " clique_cv_coverage="
              << adaptive.clique_node_fraction << "\n";
    curve = std::move(adaptive.curve);
  } else {
    if (opt.has("relabel")) {
      g = relabel(g, parse_relabel_order(opt.get("relabel", "none"))).graph;
    }
    const auto trials =
        static_cast<std::uint32_t>(opt.get_int("trials", 300));
    Rng measure = measurement_rng(rng);
    curve = estimate_conflict_curve(g, trials, measure);
  }
  Table t({"m", "r_bar", "ci95", "expected_committed"});
  const NodeId n = g.num_nodes();
  for (std::uint32_t m = 1; m <= n; m = std::max(m + 1, m * 5 / 4)) {
    t.add_row({static_cast<std::int64_t>(m), curve.r_bar(m),
               curve.r_bar_ci95(m), curve.expected_committed(m)});
  }
  t.print(std::cout);
  if (opt.has("csv")) t.write_csv(opt.get("csv", "curve.csv"));
  return 0;
}

int cmd_mu(const Options& opt) {
  Rng rng(opt.get_int("seed", 1));
  auto g = load_graph(opt, rng);
  const double rho = opt.get_double("rho", 0.25);
  std::uint32_t mu = 1;
  if (opt.has("epsilon")) {
    const AdaptiveConfig cfg = adaptive_config(opt);
    const auto op = find_operating_point(
        g, rho, cfg, static_cast<std::uint64_t>(opt.get_int("seed", 1)));
    mu = op.mu;
    std::cout << "adaptive: epsilon=" << cfg.epsilon << " trials="
              << op.sweeps << " converged=" << (op.converged ? 1 : 0)
              << " r(mu)=" << op.r_at_mu << " ci=" << op.ci_at_mu
              << " relabel=" << relabel_order_name(cfg.relabel) << "\n";
  } else {
    if (opt.has("relabel")) {
      g = relabel(g, parse_relabel_order(opt.get("relabel", "none"))).graph;
    }
    const auto trials =
        static_cast<std::uint32_t>(opt.get_int("trials", 400));
    Rng measure = measurement_rng(rng);
    mu = find_mu(g, rho, trials, measure);
  }
  std::cout << "n=" << g.num_nodes() << " d=" << g.average_degree()
            << " rho=" << rho << "\nmu ~= " << mu
            << "  (largest m with r_bar(m) <= rho)\n"
            << "theory warm start (Cor. 3, worst case): m0 = "
            << theory::warm_start_m(g.num_nodes(), g.average_degree(), rho)
            << "\n";
  return 0;
}

int cmd_theory(const Options& opt) {
  const auto n = static_cast<std::uint32_t>(opt.get_int("n", 2000));
  const auto d = static_cast<std::uint32_t>(opt.get_int("d", 16));
  const std::uint32_t n_exact = n - n % (d + 1);
  std::cout << "n=" << n << " d=" << d << "\n"
            << "Turan bound (E[MIS] >=): " << theory::turan_bound(n, d)
            << "\ninitial derivative d/(2(n-1)): "
            << theory::initial_derivative(n, d) << "\n";
  Table t({"m", "EM_Kdn_exact", "bound_exact", "bound_cor2"});
  for (std::uint32_t m = 1; m <= n_exact;
       m = std::max(m + 1, m * 2)) {
    t.add_row({static_cast<std::int64_t>(m),
               theory::em_union_of_cliques(n_exact, d, m),
               theory::conflict_ratio_bound_exact(n_exact, d, m),
               theory::conflict_ratio_bound_approx(n, d, m)});
  }
  t.print(std::cout);
  return 0;
}

int cmd_control(const Options& opt) {
  Rng rng(opt.get_int("seed", 1));
  const auto g = load_graph(opt, rng);
  ControllerParams params;
  params.rho = opt.get_double("rho", 0.25);
  params.m0 = static_cast<std::uint32_t>(opt.get_int("m0", params.m0));
  params.m_max =
      static_cast<std::uint32_t>(opt.get_int("m-max", params.m_max));
  params.T = static_cast<std::uint32_t>(opt.get_int("T", params.T));
  if (opt.get_bool("warm-start", false)) {
    params = with_warm_start(params, g.num_nodes(), g.average_degree());
  }
  const std::string name = opt.get("controller", "hybrid");
  std::unique_ptr<Controller> controller;
  if (name == "hybrid") {
    controller = std::make_unique<HybridController>(params);
  } else if (name == "recurrence-A") {
    controller = std::make_unique<RecurrenceAController>(params);
  } else if (name == "recurrence-B") {
    controller = std::make_unique<RecurrenceBController>(params);
  } else if (name == "bisection") {
    controller = std::make_unique<BisectionController>(params);
  } else if (name == "aimd") {
    controller = std::make_unique<AimdController>(params);
  } else if (name == "pid") {
    controller = std::make_unique<PidController>(params);
  } else if (name == "ewma") {
    controller = std::make_unique<EwmaHybridController>(params);
  } else if (name.rfind("fixed-", 0) == 0) {
    controller = std::make_unique<FixedController>(
        static_cast<std::uint32_t>(std::stoul(name.substr(6))));
  } else {
    std::cerr << "unknown --controller=" << name << "\n";
    return 2;
  }

  StationaryWorkload workload(g);
  RunLoopConfig config;
  config.max_steps =
      static_cast<std::uint32_t>(opt.get_int("steps", 120));
  Rng measure = measurement_rng(rng);
  const auto trace = run_controlled(*controller, workload, config, measure);

  Table t({"step", "m", "launched", "committed", "aborted", "r"});
  for (const auto& s : trace.steps) {
    t.add_row({static_cast<std::int64_t>(s.step),
               static_cast<std::int64_t>(s.m),
               static_cast<std::int64_t>(s.launched),
               static_cast<std::int64_t>(s.committed),
               static_cast<std::int64_t>(s.aborted), s.conflict_ratio()});
  }
  t.print(std::cout);
  std::cout << "mean r = " << trace.mean_conflict_ratio()
            << ", wasted = " << trace.wasted_fraction() << "\n";
  if (opt.has("csv")) t.write_csv(opt.get("csv", "trace.csv"));
  return 0;
}

int cmd_chaos(const Options& opt) {
  // A fault-injected speculative run over the reference chaos workload
  // (random counter updates under abstract locks with undo), driven by the
  // adaptive closed loop. The run self-checks the §8 recovery invariants:
  // the shared state must equal the oracle restricted to non-quarantined
  // tasks, and no abstract lock may leak. Ends with one machine-parsable
  // summary line that scripts/run_chaos.sh asserts over.
  const auto tasks_n = static_cast<std::uint32_t>(opt.get_int("tasks", 400));
  const auto cells_n = static_cast<std::uint32_t>(opt.get_int("cells", 64));
  const auto threads = static_cast<std::size_t>(opt.get_int("threads", 4));
  const auto m0 = static_cast<std::uint32_t>(opt.get_int("m", 16));
  const auto seed = static_cast<std::uint64_t>(opt.get_int("seed", 1));
  const auto fault_seed =
      static_cast<std::uint64_t>(opt.get_int("fault-seed", 42));
  const double rate = opt.get_double("fault-rate", 0.0);
  const double delay_rate = opt.get_double("delay-rate", rate / 2.0);
  const double rollback_rate = opt.get_double("rollback-rate", rate / 4.0);
  const double lock_rate = opt.get_double("lock-rate", rate / 4.0);
  const double lane_rate = opt.get_double("lane-rate", 0.0);

  // Per-task effects and their sequential oracle.
  Rng gen_rng(seed);
  struct Effect {
    std::uint32_t first;
    std::uint32_t count;
    std::int64_t delta;
  };
  std::vector<Effect> effects(tasks_n);
  for (auto& e : effects) {
    e.first = static_cast<std::uint32_t>(gen_rng.below(cells_n));
    e.count = 1 + static_cast<std::uint32_t>(gen_rng.below(4));
    e.delta = gen_rng.between(-5, 5);
  }

  std::vector<std::int64_t> cells(cells_n, 0);
  ThreadPool pool(threads);
  SpeculativeExecutor ex(
      pool, cells_n,
      [&](TaskId t, IterationContext& ctx) {
        const Effect& e = effects[t];
        for (std::uint32_t i = 0; i < e.count; ++i) {
          const std::uint32_t cell = (e.first + i) % cells_n;
          ctx.acquire(cell);
          cells[cell] += e.delta;
          ctx.on_abort([&cells, cell, d = e.delta] { cells[cell] -= d; });
        }
      },
      seed * 7 + 1);

  FaultInjector injector(fault_seed);
  injector.set_rate(FaultSite::kOperatorThrow, rate);
  injector.set_rate(FaultSite::kOperatorDelay, delay_rate);
  injector.set_rate(FaultSite::kRollbackInverse, rollback_rate);
  injector.set_rate(FaultSite::kLockAcquire, lock_rate);
  injector.set_rate(FaultSite::kPoolLane, lane_rate);
  ex.set_fault_injector(&injector);

  FailurePolicy policy;
  policy.max_retries =
      static_cast<std::uint32_t>(opt.get_int("max-retries", 3));
  policy.backoff_base_rounds =
      static_cast<std::uint32_t>(opt.get_int("backoff-base", 1));
  policy.backoff_cap_rounds =
      static_cast<std::uint32_t>(opt.get_int("backoff-cap", 16));
  policy.max_pool_failures =
      static_cast<std::uint32_t>(opt.get_int("max-pool-failures", 2));
  ex.set_failure_policy(policy);

  std::vector<TaskId> tasks(tasks_n);
  std::iota(tasks.begin(), tasks.end(), TaskId{0});
  ex.push_initial(tasks);

  ControllerParams params;
  params.rho = opt.get_double("rho", 0.25);
  params.m0 = m0;
  params.m_max =
      static_cast<std::uint32_t>(opt.get_int("m-max", params.m_max));
  HybridController controller(params);
  AdaptiveRunConfig config;
  config.max_rounds =
      static_cast<std::uint32_t>(opt.get_int("rounds", 100000));

  bool livelock = false;
  Trace trace;
  try {
    trace = run_adaptive(ex, controller, config);
  } catch (const LivelockError& e) {
    livelock = true;
    std::cerr << "livelock: " << e.what() << "\n";
  }

  // Dead-letter report.
  if (!ex.dead_letters().empty()) {
    std::cout << "dead letters (" << ex.dead_letters().size() << "):\n";
    for (const auto& dl : ex.dead_letters()) {
      std::cout << "  task " << dl.task << " after " << dl.attempts
                << " attempts: " << dl.error << "\n";
    }
  }

  // Recovery invariants: state equals the oracle over non-quarantined
  // tasks, every task is accounted for, and no abstract lock leaked.
  std::vector<bool> quarantined(tasks_n, false);
  for (const auto& dl : ex.dead_letters()) quarantined[dl.task] = true;
  std::vector<std::int64_t> oracle(cells_n, 0);
  for (std::uint32_t t = 0; t < tasks_n; ++t) {
    if (quarantined[t]) continue;
    for (std::uint32_t i = 0; i < effects[t].count; ++i) {
      oracle[(effects[t].first + i) % cells_n] += effects[t].delta;
    }
  }
  const bool state_ok = cells == oracle;
  const std::size_t lock_leaks = ex.locks().owned_count();
  const bool accounted =
      ex.totals().committed + ex.dead_letters().size() == tasks_n;
  const bool ok =
      state_ok && lock_leaks == 0 && (accounted || livelock) && !livelock;

  std::cout << "CHAOS"
            << " fault_seed=" << fault_seed << " fault_rate=" << rate
            << " rounds=" << trace.steps.size()
            << " launched=" << ex.totals().launched
            << " committed=" << ex.totals().committed
            << " aborted=" << ex.totals().aborted
            << " retried=" << ex.totals().retried
            << " quarantined=" << ex.totals().quarantined
            << " injected=" << trace.total_injected()
            << " dead_letters=" << ex.dead_letters().size()
            << " pool_failures=" << ex.pool_failures()
            << " degraded=" << (ex.serial_degraded() ? 1 : 0)
            << " watchdog=" << (trace.watchdog_fired() ? 1 : 0)
            << " livelock=" << (livelock ? 1 : 0)
            << " lock_leaks=" << lock_leaks
            << " state=" << (state_ok ? "ok" : "corrupt")
            << " verdict=" << (ok ? "pass" : "fail") << "\n";
  return ok ? 0 : 1;
}

int cmd_seating(const Options& opt) {
  const auto n = static_cast<std::uint32_t>(opt.get_int("n", 1000));
  std::cout << "unfriendly seating, n=" << n << "\n"
            << "path  E[MIS] = " << seating::expected_path(n)
            << " (density " << seating::expected_path(n) / n << ")\n"
            << "cycle E[MIS] = " << seating::expected_cycle(std::max(3u, n))
            << "\nlimit density (1-e^-2)/2 = " << seating::path_density_limit()
            << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const Options opt(argc - 1, argv + 1);
  try {
    if (command == "gen") return cmd_gen(opt);
    if (command == "curve") return cmd_curve(opt);
    if (command == "mu") return cmd_mu(opt);
    if (command == "theory") return cmd_theory(opt);
    if (command == "control") return cmd_control(opt);
    if (command == "seating") return cmd_seating(opt);
    if (command == "chaos") return cmd_chaos(opt);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
