// optipar_serve: the scheduler daemon (DESIGN.md §13) and its client CLI.
//
//   optipar_serve serve    --socket S --state-dir D [capacity/threads ...]
//   optipar_serve upload   --socket S --name g --graph file.txt
//   optipar_serve run      --socket S --graph g [job knobs] [--wait]
//   optipar_serve estimate --socket S --graph g [--rho ...] [--wait]
//   optipar_serve status|trace|cancel --socket S --job N
//   optipar_serve artifact --socket S --job N [--kind K] [--out F]
//   optipar_serve health|server-status|metrics|shutdown --socket S
//
// Exit codes (shared taxonomy with optipar_cli, documented in README.md):
//   0 ok · 1 runtime error · 2 usage · 3 graph I/O error · 4 snapshot/
//   state error · 6 deadline exceeded · 7 overloaded (typed backpressure)
//   · 8 certification refuted (--verify job failed its result certificate).
#include <csignal>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <variant>

#include "graph/graph_io.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "support/options.hpp"
#include "support/snapshot/snapshot.hpp"

namespace {

using namespace optipar;
using namespace optipar::serve;

// Exit codes shared with optipar_cli (see README.md "Exit codes").
enum ExitCode : int {
  kExitOk = 0,
  kExitError = 1,
  kExitUsage = 2,
  kExitGraphIo = 3,
  kExitSnapshot = 4,
  kExitDeadline = 6,
  kExitOverloaded = 7,
  kExitCertification = 8,
};

int usage() {
  std::cerr <<
      "usage: optipar_serve <serve|upload|run|estimate|status|trace|"
      "artifact|cancel|health|server-status|metrics|shutdown> [--options]\n"
      "  serve   --socket=S --state-dir=D [--threads=N] [--capacity=N]\n"
      "          [--max-active=N] [--default-timeout-ms=N]\n"
      "          [--checkpoint-every=N]\n"
      "  upload  --socket=S --name=NAME --graph=FILE\n"
      "  run     --socket=S --graph=NAME [--controller=hybrid] [--rho=R]\n"
      "          [--seed=N] [--steps=N] [--m0=N] [--m-max=N]\n"
      "          [--timeout-ms=N] [--checkpoint-every=N] [--wait]\n"
      "          [--scheduler=random|chromatic|relaxed] [--verify]\n"
      "          [--trace-out=F] [--trace-chrome=F] [--metrics-out=F]\n"
      "          (artifact flags require --wait)\n"
      "  estimate --socket=S --graph=NAME [--rho=R] [--trials=N]\n"
      "          [--seed=N] [--wait]\n"
      "  status|trace|cancel --socket=S --job=N\n"
      "  artifact --socket=S --job=N [--out=F]\n"
      "          [--kind=trace-jsonl|trace-chrome|metrics-json]\n"
      "  health|server-status|shutdown [--drain] --socket=S\n"
      "  metrics --socket=S [--format=prometheus|json]\n";
  return kExitUsage;
}

volatile std::sig_atomic_t g_signal = 0;
void on_signal(int) { g_signal = 1; }

Client connect_client(const Options& opt) {
  return Client::connect(opt.get("socket", "optipar.sock"),
                         static_cast<int>(opt.get_int("io-timeout-ms", 0)));
}

int cmd_serve(const Options& opt) {
  ServerConfig config;
  config.socket_path = opt.get("socket", "optipar.sock");
  config.state_dir = opt.get("state-dir", "optipar-state");
  config.threads = static_cast<std::size_t>(opt.get_int("threads", 4));
  config.queue_capacity =
      static_cast<std::size_t>(opt.get_int("capacity", 16));
  config.max_active =
      static_cast<std::size_t>(opt.get_int("max-active", 2));
  config.max_connections =
      static_cast<std::size_t>(opt.get_int("max-connections", 64));
  config.default_timeout_ms = opt.get_int("default-timeout-ms", 0);
  config.checkpoint_every =
      static_cast<std::uint32_t>(opt.get_int("checkpoint-every", 8));
  config.rounds_per_slice =
      static_cast<std::uint32_t>(opt.get_int("rounds-per-slice", 8));

  Server server(config);
  server.start();
  std::cout << "optipar_serve: listening on " << config.socket_path
            << " state=" << config.state_dir
            << " threads=" << config.threads
            << " capacity=" << config.queue_capacity
            << " max_active=" << config.max_active
            << " recovered=" << server.recovered_jobs() << std::endl;

  // SIGTERM/SIGINT → graceful immediate shutdown: active jobs are
  // force-checkpointed and abandoned to the next incarnation (kill -9
  // skips even that, which is exactly what the WAL + checkpoint ladder
  // exist to survive).
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  std::thread watcher([&server] {
    while (g_signal == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    server.request_shutdown(/*drain=*/false);
  });
  server.wait();
  g_signal = 1;  // release the watcher if shutdown came over the wire
  watcher.join();
  std::cout << "optipar_serve: stopped" << std::endl;
  return kExitOk;
}

int cmd_upload(const Options& opt) {
  const std::string file = opt.get("graph", "");
  if (file.empty()) {
    std::cerr << "upload: --graph FILE is required\n";
    return kExitUsage;
  }
  std::ifstream is(file);
  if (!is) {
    std::cerr << "upload: cannot open " << file << "\n";
    return kExitGraphIo;
  }
  std::ostringstream text;
  text << is.rdbuf();
  auto client = connect_client(opt);
  const auto reply = client.upload_graph(
      opt.get("name", "default"), text.str());
  std::cout << reply.message << "\n";
  return kExitOk;
}

/// Write one fetched artifact to a file; kExitError when the daemon does
/// not hold it (evicted, recovered, or the job produced none).
int save_artifact(Client& client, std::uint64_t job, ArtifactKind kind,
                  const std::string& path) {
  try {
    const auto reply = client.artifact(job, kind);
    std::ofstream os(path);
    if (!os) {
      std::cerr << "cannot open " << path << "\n";
      return kExitError;
    }
    os << reply.text;
  } catch (const ServeError& e) {
    std::cerr << "artifact " << artifact_kind_name(kind) << ": " << e.what()
              << "\n";
    return kExitError;
  }
  return kExitOk;
}

int print_submit(Client& client, const Client::SubmitResult& result,
                 const Options& opt) {
  const bool wait = opt.get_bool("wait", false);
  const int budget_ms = static_cast<int>(opt.get_int("wait-ms", 120000));
  if (const auto* over = std::get_if<OverloadedReply>(&result)) {
    std::cerr << "overloaded: queue " << over->queue_depth << "/"
              << over->capacity << " (retry later)\n";
    return kExitOverloaded;
  }
  if (const auto* err = std::get_if<ErrorReply>(&result)) {
    std::cerr << "error [" << error_code_name(err->code)
              << "]: " << err->message << "\n";
    return err->code == ErrorCode::kBadRequest ? kExitUsage : kExitError;
  }
  const auto& accepted = std::get<JobAcceptedReply>(result);
  std::cout << "job=" << accepted.job << " accepted\n";
  if (!wait) return kExitOk;
  const auto status = client.wait_for_job(accepted.job, 20, budget_ms);
  std::cout << "job=" << status.job << " state="
            << job_state_name(status.state) << " rounds=" << status.rounds
            << " committed=" << status.committed << " pending="
            << status.pending << " mu=" << status.mu << " resumed="
            << (status.resumed ? 1 : 0);
  if (status.verified != 0) {
    std::cout << " verified=" << static_cast<int>(status.verified)
              << " cert=\"" << status.cert << '"';
  }
  if (!status.error.empty()) std::cout << " error=\"" << status.error << '"';
  std::cout << "\n";
  // Fetch any requested observability artifacts now that the job is
  // terminal; a fetch failure overrides an otherwise-ok exit code.
  int artifact_rc = kExitOk;
  if (opt.has("trace-out")) {
    artifact_rc = std::max(
        artifact_rc, save_artifact(client, accepted.job,
                                   ArtifactKind::kTraceJsonl,
                                   opt.get("trace-out", "")));
  }
  if (opt.has("trace-chrome")) {
    artifact_rc = std::max(
        artifact_rc, save_artifact(client, accepted.job,
                                   ArtifactKind::kTraceChrome,
                                   opt.get("trace-chrome", "")));
  }
  if (opt.has("metrics-out")) {
    artifact_rc = std::max(
        artifact_rc, save_artifact(client, accepted.job,
                                   ArtifactKind::kMetricsJson,
                                   opt.get("metrics-out", "")));
  }
  switch (status.state) {
    case JobState::kDone:
      return artifact_rc;
    case JobState::kTimedOut:
      return kExitDeadline;
    default:
      // A refuted certificate is its own typed outcome, distinguishable
      // from ordinary job failure by scripts.
      return status.verified == 2 ? kExitCertification : kExitError;
  }
}

int cmd_run(const Options& opt) {
  RunRequest req;
  req.graph = opt.get("graph", "default");
  req.controller = opt.get("controller", "hybrid");
  req.rho = opt.get_double("rho", 0.25);
  req.seed = static_cast<std::uint64_t>(opt.get_int("seed", 1));
  req.steps = static_cast<std::uint32_t>(opt.get_int("steps", 100000));
  req.m0 = static_cast<std::uint32_t>(opt.get_int("m0", 0));
  req.m_max = static_cast<std::uint32_t>(opt.get_int("m-max", 0));
  req.timeout_ms = opt.get_int("timeout-ms", 0);
  req.checkpoint_every =
      static_cast<std::uint32_t>(opt.get_int("checkpoint-every", 0));
  req.scheduler = opt.get("scheduler", "random");
  req.verify = opt.get_bool("verify", false);
  if ((opt.has("trace-out") || opt.has("trace-chrome") ||
       opt.has("metrics-out")) &&
      !opt.get_bool("wait", false)) {
    std::cerr << "run: --trace-out/--trace-chrome/--metrics-out require "
                 "--wait (artifacts exist only once the job is terminal)\n";
    return kExitUsage;
  }
  auto client = connect_client(opt);
  return print_submit(client, client.run(req), opt);
}

int cmd_estimate(const Options& opt) {
  EstimateRequest req;
  req.graph = opt.get("graph", "default");
  req.rho = opt.get_double("rho", 0.25);
  req.trials = static_cast<std::uint32_t>(opt.get_int("trials", 400));
  req.seed = static_cast<std::uint64_t>(opt.get_int("seed", 1));
  auto client = connect_client(opt);
  return print_submit(client, client.estimate(req), opt);
}

int cmd_status(const Options& opt) {
  auto client = connect_client(opt);
  const auto status = client.status(
      static_cast<std::uint64_t>(opt.get_int("job", 0)));
  std::cout << "job=" << status.job << " state="
            << job_state_name(status.state) << " rounds=" << status.rounds
            << " committed=" << status.committed << " pending="
            << status.pending << " wasted=" << status.wasted << " mean_r="
            << status.mean_r << " mu=" << status.mu << " resumed="
            << (status.resumed ? 1 : 0)
            << " scheduler=" << status.scheduler;
  if (status.verified != 0) {
    std::cout << " verified=" << static_cast<int>(status.verified)
              << " cert=\"" << status.cert << '"';
  }
  if (!status.error.empty()) std::cout << " error=\"" << status.error << '"';
  std::cout << "\n";
  return kExitOk;
}

int cmd_trace(const Options& opt) {
  auto client = connect_client(opt);
  const auto reply = client.trace(
      static_cast<std::uint64_t>(opt.get_int("job", 0)));
  if (opt.has("out")) {
    std::ofstream os(opt.get("out", ""));
    if (!os) {
      std::cerr << "cannot open --out=" << opt.get("out", "") << "\n";
      return kExitError;
    }
    os << reply.text;
  } else {
    std::cout << reply.text;
  }
  return kExitOk;
}

int cmd_artifact(const Options& opt) {
  const std::string kind_name = opt.get("kind", "trace-chrome");
  ArtifactKind kind;
  if (kind_name == "trace-jsonl") {
    kind = ArtifactKind::kTraceJsonl;
  } else if (kind_name == "trace-chrome") {
    kind = ArtifactKind::kTraceChrome;
  } else if (kind_name == "metrics-json") {
    kind = ArtifactKind::kMetricsJson;
  } else {
    std::cerr << "artifact: unknown --kind=" << kind_name
              << " (trace-jsonl|trace-chrome|metrics-json)\n";
    return kExitUsage;
  }
  auto client = connect_client(opt);
  const auto job = static_cast<std::uint64_t>(opt.get_int("job", 0));
  if (opt.has("out")) {
    return save_artifact(client, job, kind, opt.get("out", ""));
  }
  std::cout << client.artifact(job, kind).text;
  return kExitOk;
}

int cmd_cancel(const Options& opt) {
  auto client = connect_client(opt);
  const auto reply = client.cancel(
      static_cast<std::uint64_t>(opt.get_int("job", 0)));
  std::cout << reply.message << "\n";
  return kExitOk;
}

int cmd_health(const Options& opt) {
  auto client = connect_client(opt);
  std::cout << client.health().message << "\n";
  return kExitOk;
}

int cmd_server_status(const Options& opt) {
  auto client = connect_client(opt);
  const auto info = client.server_status();
  std::cout << "queued=" << info.queued << " active=" << info.active
            << " capacity=" << info.capacity << " submitted="
            << info.submitted << " rejected=" << info.rejected
            << " completed=" << info.completed << " failed=" << info.failed
            << " cancelled=" << info.cancelled << " timed_out="
            << info.timed_out << " resumed=" << info.resumed
            << " certified=" << info.certified
            << " cert_failed=" << info.cert_failed << " lanes="
            << info.lanes << " draining=" << (info.draining ? 1 : 0)
            << "\n";
  return kExitOk;
}

int cmd_metrics(const Options& opt) {
  auto client = connect_client(opt);
  std::cout << client.metrics(opt.get("format", "prometheus")).text;
  return kExitOk;
}

int cmd_shutdown(const Options& opt) {
  auto client = connect_client(opt);
  std::cout << client.shutdown(opt.get_bool("drain", false)).message
            << "\n";
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const Options opt(argc - 1, argv + 1);
  try {
    if (command == "serve") return cmd_serve(opt);
    if (command == "upload") return cmd_upload(opt);
    if (command == "run") return cmd_run(opt);
    if (command == "estimate") return cmd_estimate(opt);
    if (command == "status") return cmd_status(opt);
    if (command == "trace") return cmd_trace(opt);
    if (command == "artifact") return cmd_artifact(opt);
    if (command == "cancel") return cmd_cancel(opt);
    if (command == "health") return cmd_health(opt);
    if (command == "server-status") return cmd_server_status(opt);
    if (command == "metrics") return cmd_metrics(opt);
    if (command == "shutdown") return cmd_shutdown(opt);
  } catch (const optipar::io::GraphIoError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return kExitGraphIo;
  } catch (const optipar::snapshot::SnapshotError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return kExitSnapshot;
  } catch (const ServeError& e) {
    std::cerr << "error [" << error_code_name(e.code()) << "]: " << e.what()
              << "\n";
    return kExitError;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return kExitError;
  }
  return usage();
}
