// Delaunay mesh refinement — the paper's running example (§2) — executed
// end-to-end on the speculative runtime with adaptive processor
// allocation: generate a point cloud, build the Delaunay triangulation,
// then repair all badly-shaped triangles by speculative cavity
// retriangulation while Algorithm 1 steers the round size.
//
// Run: ./examples/delaunay_refinement [--points=400] [--min-angle=25]
//      [--min-edge=2.0] [--threads=4] [--rho=0.25]
#include <iostream>

#include "apps/dmr/refine.hpp"
#include "control/hybrid.hpp"
#include "support/options.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/timer.hpp"

using namespace optipar;
using namespace optipar::dmr;

int main(int argc, char** argv) {
  const Options opt(argc, argv);
  const auto n_points = static_cast<std::size_t>(opt.get_int("points", 400));
  const auto threads = static_cast<std::size_t>(opt.get_int("threads", 4));

  RefineQuality quality;
  quality.min_angle_deg = opt.get_double("min-angle", 25.0);
  quality.min_edge = opt.get_double("min-edge", 2.0);

  // 1. Synthetic input: a uniform point cloud over a 100x100 region.
  Rng rng(opt.get_int("seed", 2024));
  std::vector<Point2> pts;
  pts.reserve(n_points);
  for (std::size_t i = 0; i < n_points; ++i) {
    pts.push_back({rng.uniform() * 100.0, rng.uniform() * 100.0});
  }
  quality.set_domain(pts);

  // 2. Initial Delaunay triangulation (sequential substrate).
  Timer build_timer;
  Mesh mesh;
  build_delaunay(mesh, pts, 16.0);
  std::cout << "built Delaunay triangulation of " << n_points << " points: "
            << mesh.num_alive_triangles() << " triangles in "
            << build_timer.millis() << " ms\n";
  const auto initially_bad = bad_triangles(mesh, quality);
  std::cout << "badly shaped triangles (min angle < "
            << quality.min_angle_deg << " deg): " << initially_bad.size()
            << "\n\n";

  // 3. Speculative refinement under the adaptive controller.
  ThreadPool pool(threads);
  ControllerParams params;
  params.rho = opt.get_double("rho", 0.25);
  HybridController controller(params);

  Timer refine_timer;
  const Trace trace =
      refine_adaptive(mesh, quality, controller, pool, /*seed=*/7);
  std::cout << "refinement finished in " << trace.steps.size()
            << " rounds (" << refine_timer.millis() << " ms)\n"
            << "  committed refinements: " << trace.total_committed()
            << "\n  aborted (rolled back): " << trace.total_aborted()
            << "\n  wasted-work fraction:  " << trace.wasted_fraction()
            << "\n  mean conflict ratio:   " << trace.mean_conflict_ratio()
            << "\n\n";

  std::cout << "final mesh: " << mesh.num_alive_triangles()
            << " triangles, " << mesh.num_points() << " points\n"
            << "  structurally valid:    "
            << (mesh.validate() ? "yes" : "NO") << "\n  locally Delaunay:      "
            << (mesh.is_locally_delaunay() ? "yes" : "NO")
            << "\n  remaining bad:         "
            << bad_triangles(mesh, quality).size() << "\n";

  // Minimum-angle distribution over the triangles the quality target
  // governs (interior and above the size floor; tiny slivers are exempted
  // by design — they are reported separately).
  Histogram hist(0.0, 90.0, 18);  // 5-degree bins
  std::size_t floor_exempt = 0;
  double worst_angle = 90.0;
  for (const TriId t : mesh.alive_triangles()) {
    const auto& tri = mesh.tri(t);
    if (tri.v[0] < kNumSuperVertices || tri.v[1] < kNumSuperVertices ||
        tri.v[2] < kNumSuperVertices) {
      continue;
    }
    if (mesh.shortest_edge_of(t) < quality.min_edge) {
      ++floor_exempt;
      continue;
    }
    const double degrees = mesh.min_angle_of(t) * 180.0 / 3.14159265358979;
    worst_angle = std::min(worst_angle, degrees);
    hist.add(degrees);
  }
  std::cout << "min-angle distribution (governed triangles) "
            << "[0..90 deg, 5-deg bins]:\n  |" << hist.ascii(18)
            << "|  worst=" << worst_angle
            << " deg (target " << quality.min_angle_deg
            << "), median=" << hist.quantile(0.5)
            << " deg\n  size-floor-exempt slivers: " << floor_exempt << "\n";

  // A short allocation trace, to see Algorithm 1 breathing.
  std::cout << "\nallocation trace (every 4th round):\nround  m  launched "
               "committed aborted r\n";
  for (const auto& s : trace.steps) {
    if (s.step % 4 == 0) {
      std::printf("%5u %3u %8u %9u %7u %.3f\n", s.step, s.m, s.launched,
                  s.committed, s.aborted, s.conflict_ratio());
    }
  }
  return 0;
}
