// Survey propagation with survey-inspired decimation on random 3-SAT —
// one of the algorithms the paper lists as parallelized by Galois (§1).
// The SP message updates run speculatively: a clause-update task conflicts
// with every clause sharing one of its variables, and Algorithm 1 chooses
// how many updates to launch per round.
//
// Run: ./examples/survey_propagation [--vars=120] [--ratio=3.2]
//      [--threads=4] [--rho=0.25]
#include <iostream>

#include "apps/sp/survey.hpp"
#include "control/hybrid.hpp"
#include "support/options.hpp"
#include "support/timer.hpp"

using namespace optipar;
using namespace optipar::sp;

int main(int argc, char** argv) {
  const Options opt(argc, argv);
  const auto vars = static_cast<std::uint32_t>(opt.get_int("vars", 120));
  const double ratio = opt.get_double("ratio", 3.2);
  const auto clauses = static_cast<std::uint32_t>(ratio * vars);
  const auto threads = static_cast<std::size_t>(opt.get_int("threads", 4));

  Rng rng(opt.get_int("seed", 31));
  const Formula formula = random_ksat(vars, clauses, 3, rng);
  std::cout << "random 3-SAT: " << vars << " variables, " << clauses
            << " clauses (ratio " << ratio << "; threshold ~4.27)\n";

  ThreadPool pool(threads);
  ControllerParams params;
  params.rho = opt.get_double("rho", 0.25);
  HybridController controller(params);

  SpConfig config;
  Timer timer;
  Rng solver_rng(opt.get_int("seed", 31) + 1);
  const SidResult result =
      solve_with_sid(formula, config, solver_rng, &controller, &pool);

  std::cout << "survey-inspired decimation finished in " << timer.millis()
            << " ms\n  result: "
            << (result.satisfied ? "SATISFYING ASSIGNMENT FOUND"
                                 : "no assignment found")
            << "\n  decimation steps (SP-guided fixes): "
            << result.decimation_steps
            << "\n  residual solved by DPLL fallback: "
            << (result.used_dpll_fallback ? "yes" : "no") << "\n";

  if (!result.trace.steps.empty()) {
    std::cout << "\nspeculative SP execution totals:\n  rounds: "
              << result.trace.steps.size()
              << "\n  committed clause updates: "
              << result.trace.total_committed()
              << "\n  rolled back:              "
              << result.trace.total_aborted()
              << "\n  mean conflict ratio:      "
              << result.trace.mean_conflict_ratio() << "\n";
  }
  if (result.satisfied) {
    std::cout << "\nverification: formula.is_satisfied_by(assignment) = "
              << (formula.is_satisfied_by(result.assignment) ? "true"
                                                             : "false")
              << "\n";
  }
  return result.satisfied ? 0 : 1;
}
