// Quickstart: the paper's problem in 60 lines.
//
// We have a work-set of tasks with unknown pairwise conflicts (a CC graph).
// Launching too many tasks at once wastes work on rollbacks; too few wastes
// processors. The HybridController (Algorithm 1 of the paper) adaptively
// finds the allocation m where the conflict ratio sits at a target ρ.
//
// Build & run:  ./examples/quickstart [--n=2000] [--d=16] [--rho=0.25]
#include <iostream>

#include "control/hybrid.hpp"
#include "graph/generators.hpp"
#include "model/conflict_ratio.hpp"
#include "sim/run_loop.hpp"
#include "support/options.hpp"

using namespace optipar;

int main(int argc, char** argv) {
  const Options opt(argc, argv);
  const auto n = static_cast<NodeId>(opt.get_int("n", 2000));
  const double d = opt.get_double("d", 16.0);
  const double rho = opt.get_double("rho", 0.25);

  // 1. A synthetic workload: n tasks whose conflicts form a random graph
  //    of average degree d. (Real workloads plug in the same Workload
  //    interface; see the other examples for actual irregular algorithms.)
  Rng rng(1234);
  const CsrGraph conflicts = gen::random_with_average_degree(n, d, rng);
  StationaryWorkload workload(conflicts);

  // 2. The reference operating point: the largest m with r̄(m) <= ρ,
  //    estimated offline (the controller has to find it online).
  const std::uint32_t mu = find_mu(conflicts, rho, 200, rng);
  std::cout << "workload: n=" << n << " tasks, avg conflict degree " << d
            << "\ntarget conflict ratio rho = " << rho
            << "\nideal allocation mu ~= " << mu << " (the controller does "
            << "not know this)\n\n";

  // 3. Run the paper's hybrid controller from a cold start of m0 = 2.
  ControllerParams params;
  params.rho = rho;
  params.m_max = 4096;
  HybridController controller(params);

  RunLoopConfig config;
  config.max_steps = 60;
  const Trace trace = run_controlled(controller, workload, config, rng);

  std::cout << "step   m_t   launched  committed  aborted   r_t\n";
  for (const auto& s : trace.steps) {
    if (s.step < 25 || s.step % 5 == 0) {
      std::printf("%4u  %5u  %8u  %9u  %7u   %.3f\n", s.step, s.m,
                  s.launched, s.committed, s.aborted, s.conflict_ratio());
    }
  }
  std::cout << "\nconverged to within 30% of mu at step "
            << trace.convergence_step(mu, 0.30, 5)
            << "; wasted work fraction "
            << trace.wasted_fraction() << "\n";
  return 0;
}
