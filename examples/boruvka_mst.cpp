// Boruvka minimum spanning tree by speculative edge contraction, with the
// result cross-checked against a sequential Kruskal. Demonstrates how a
// morph algorithm (the graph itself mutates) runs on the optipar runtime
// and how the adaptive controller rides the shrinking parallelism as the
// graph contracts toward a single supernode.
//
// Run: ./examples/boruvka_mst [--nodes=2000] [--degree=8] [--threads=4]
#include <iostream>

#include "apps/boruvka/boruvka.hpp"
#include "control/hybrid.hpp"
#include "graph/generators.hpp"
#include "support/options.hpp"
#include "support/timer.hpp"

using namespace optipar;

int main(int argc, char** argv) {
  const Options opt(argc, argv);
  const auto nodes = static_cast<NodeId>(opt.get_int("nodes", 2000));
  const double degree = opt.get_double("degree", 8.0);
  const auto threads = static_cast<std::size_t>(opt.get_int("threads", 4));

  // Random weighted graph with unique-ish weights.
  Rng rng(opt.get_int("seed", 99));
  const auto skeleton = gen::random_with_average_degree(nodes, degree, rng);
  std::vector<boruvka::WeightedEdge> edges;
  edges.reserve(skeleton.num_edges());
  for (const auto& [u, v] : skeleton.edges()) {
    edges.push_back({u, v, rng.uniform() * 1000.0 + 1e-6});
  }
  std::cout << "graph: " << nodes << " nodes, " << edges.size()
            << " weighted edges\n";

  Timer kruskal_timer;
  const double reference = boruvka::kruskal_mst_weight(nodes, edges);
  std::cout << "sequential Kruskal reference: weight = " << reference
            << " (" << kruskal_timer.millis() << " ms)\n";

  ThreadPool pool(threads);
  ControllerParams params;
  params.rho = opt.get_double("rho", 0.25);
  params.m_max = 2048;
  HybridController controller(params);

  Timer boruvka_timer;
  const auto result =
      boruvka::boruvka_adaptive(nodes, edges, controller, pool, 31337);
  std::cout << "speculative Boruvka:          weight = " << result.mst_weight
            << " (" << boruvka_timer.millis() << " ms)\n"
            << "  match: "
            << (std::abs(result.mst_weight - reference) <
                        1e-6 * std::max(1.0, reference)
                    ? "EXACT"
                    : "MISMATCH!")
            << "\n  tree edges chosen: " << result.edges_chosen
            << "\n  rounds: " << result.trace.steps.size()
            << "\n  wasted-work fraction: "
            << result.trace.wasted_fraction()
            << "\n  mean conflict ratio:  "
            << result.trace.mean_conflict_ratio() << "\n";

  std::cout << "\ncontraction trace (every 8th round):\nround    m pending "
               "committed aborted\n";
  for (const auto& s : result.trace.steps) {
    if (s.step % 8 == 0) {
      std::printf("%5u %4u %7u %9u %7u\n", s.step, s.m, s.pending_after,
                  s.committed, s.aborted);
    }
  }
  return 0;
}
