// Why adapt at all? This example pits Algorithm 1 against every plausible
// fixed allocation on a workload whose available parallelism changes
// drastically over time (a refinement-style ramp followed by a drain), and
// reports the two costs the paper trades off: total rounds (time) and
// wasted speculative work (power / rollback cost).
//
// Run: ./examples/adaptive_vs_fixed [--budget=20000] [--rho=0.25]
#include <iostream>
#include <memory>

#include "control/baselines.hpp"
#include "control/hybrid.hpp"
#include "sim/run_loop.hpp"
#include "support/options.hpp"

using namespace optipar;

namespace {

RefiningParams workload_params(std::uint64_t budget) {
  RefiningParams rp;
  rp.seed_nodes = 8;
  rp.children = 3;
  rp.attach_neighbors = 2;
  rp.total_budget = budget;
  return rp;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt(argc, argv);
  const auto budget = static_cast<std::uint64_t>(
      opt.get_int("budget", 20000));
  const double rho = opt.get_double("rho", 0.25);

  std::cout << "workload: refinement-style ramp, " << budget
            << " total tasks spawned; parallelism goes ~8 -> thousands -> 0\n"
            << "target conflict ratio rho = " << rho << "\n\n";

  std::cout << "controller     rounds  committed  aborted  wasted  mean_r\n";

  auto run_one = [&](const std::string& name,
                     std::unique_ptr<Controller> controller) {
    Rng rng(4242);  // same workload randomness for every controller
    RefiningWorkload workload(workload_params(budget), rng);
    RunLoopConfig config;
    config.max_steps = 100000;
    const Trace trace = run_controlled(*controller, workload, config, rng);
    std::printf("%-13s %7zu %10llu %8llu  %5.3f   %.3f\n", name.c_str(),
                trace.steps.size(),
                static_cast<unsigned long long>(trace.total_committed()),
                static_cast<unsigned long long>(trace.total_aborted()),
                trace.wasted_fraction(), trace.mean_conflict_ratio());
  };

  ControllerParams params;
  params.rho = rho;
  params.m_max = 8192;
  run_one("hybrid", std::make_unique<HybridController>(params));
  for (const std::uint32_t m : {2u, 8u, 32u, 128u, 512u, 2048u}) {
    run_one("fixed-" + std::to_string(m),
            std::make_unique<FixedController>(m));
  }

  std::cout <<
      "\nreading the table: small fixed allocations take many more rounds "
      "(they cannot exploit the ramp); large fixed allocations waste work "
      "on rollbacks while parallelism is scarce (head and tail). The "
      "hybrid controller gets near-minimal rounds at a bounded waste "
      "around rho.\n";
  return 0;
}
