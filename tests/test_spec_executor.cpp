#include "rt/spec_executor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "rt/adaptive_executor.hpp"
#include "control/baselines.hpp"
#include "control/hybrid.hpp"

namespace optipar {
namespace {

TEST(UndoLog, RunsInversesInReverseOrder) {
  UndoLog log;
  std::vector<int> order;
  log.record([&] { order.push_back(1); });
  log.record([&] { order.push_back(2); });
  EXPECT_EQ(log.size(), 2u);
  log.rollback();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
  EXPECT_TRUE(log.empty());
}

TEST(UndoLog, DiscardSkipsInverses) {
  UndoLog log;
  int hits = 0;
  log.record([&] { ++hits; });
  log.discard();
  log.rollback();
  EXPECT_EQ(hits, 0);
}

TEST(SpecExecutor, IndependentTasksAllCommitInOneRound) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> cell(16);
  SpeculativeExecutor ex(
      pool, 16,
      [&](TaskId t, IterationContext& ctx) {
        ctx.acquire(static_cast<std::uint32_t>(t));
        cell[t].fetch_add(1);
      },
      /*seed=*/1);
  std::vector<TaskId> tasks;
  for (TaskId t = 0; t < 16; ++t) tasks.push_back(t);
  ex.push_initial(tasks);
  const auto stats = ex.run_round(16);
  EXPECT_EQ(stats.launched, 16u);
  EXPECT_EQ(stats.committed, 16u);
  EXPECT_EQ(stats.aborted, 0u);
  EXPECT_TRUE(ex.done());
  for (auto& c : cell) EXPECT_EQ(c.load(), 1);
  EXPECT_TRUE(ex.locks().all_free());
}

TEST(SpecExecutor, LaunchIsCappedByWorklist) {
  ThreadPool pool(1);
  SpeculativeExecutor ex(
      pool, 4, [](TaskId, IterationContext& ctx) { ctx.acquire(0); }, 2);
  ex.push_initial(std::vector<TaskId>{0});
  const auto stats = ex.run_round(50);
  EXPECT_EQ(stats.launched, 1u);
  EXPECT_EQ(stats.committed, 1u);
}

TEST(SpecExecutor, EmptyRoundIsHarmless) {
  ThreadPool pool(1);
  SpeculativeExecutor ex(pool, 1, [](TaskId, IterationContext&) {}, 3);
  const auto stats = ex.run_round(8);
  EXPECT_EQ(stats.launched, 0u);
  EXPECT_TRUE(ex.done());
}

TEST(SpecExecutor, ConflictingTasksRetryUntilAllCommit) {
  // All tasks hammer item 0: exactly one commits per round, the rest are
  // rolled back and requeued — but everything eventually commits.
  ThreadPool pool(4);
  std::atomic<int> commits{0};
  SpeculativeExecutor ex(
      pool, 1,
      [&](TaskId, IterationContext& ctx) {
        ctx.acquire(0);
        commits.fetch_add(1);
      },
      4);
  std::vector<TaskId> tasks{1, 2, 3, 4, 5, 6, 7, 8};
  ex.push_initial(tasks);
  int rounds = 0;
  while (!ex.done() && rounds < 100) {
    (void)ex.run_round(8);
    ++rounds;
  }
  EXPECT_TRUE(ex.done());
  EXPECT_EQ(commits.load(), 8);
  EXPECT_EQ(ex.totals().committed, 8u);
  EXPECT_EQ(ex.totals().launched,
            ex.totals().committed + ex.totals().aborted);
}

TEST(SpecExecutor, AbortRollsBackSpeculativeMutations) {
  // Tasks mutate first (atomic increment + undo), then acquire a shared
  // item that every task collides on. Within one round only the first
  // committer can hold item 0, so every other task mutates and then MUST
  // roll back; the final counter equals the task count exactly.
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  SpeculativeExecutor ex(
      pool, 9,
      [&](TaskId t, IterationContext& ctx) {
        ctx.acquire(1 + static_cast<std::uint32_t>(t));  // private item
        counter.fetch_add(1);
        ctx.on_abort([&] { counter.fetch_sub(1); });
        ctx.acquire(0);  // contended item, acquired AFTER the mutation
      },
      5);
  std::vector<TaskId> tasks{0, 1, 2, 3, 4, 5, 6, 7};
  ex.push_initial(tasks);
  while (!ex.done()) (void)ex.run_round(8);
  EXPECT_EQ(counter.load(), 8);
  EXPECT_GT(ex.totals().aborted, 0u);  // rollback really happened
  EXPECT_EQ(ex.totals().committed, 8u);
}

TEST(SpecExecutor, VoluntaryAbortViaException) {
  ThreadPool pool(2);
  std::atomic<int> attempts{0};
  SpeculativeExecutor ex(
      pool, 2,
      [&](TaskId, IterationContext&) {
        if (attempts.fetch_add(1) == 0) throw AbortIteration{};
      },
      6);
  ex.push_initial(std::vector<TaskId>{7});
  const auto first = ex.run_round(1);
  EXPECT_EQ(first.aborted, 1u);
  EXPECT_FALSE(ex.done());  // requeued
  const auto second = ex.run_round(1);
  EXPECT_EQ(second.committed, 1u);
  EXPECT_TRUE(ex.done());
}

TEST(SpecExecutor, CommittedPushesJoinWorklistAbortedOnesDoNot) {
  ThreadPool pool(2);
  SpeculativeExecutor ex(
      pool, 2,
      [&](TaskId t, IterationContext& ctx) {
        ctx.acquire(static_cast<std::uint32_t>(t % 2));
        if (t == 0) {
          ctx.push(100);  // will commit -> visible
        }
      },
      7);
  ex.push_initial(std::vector<TaskId>{0});
  (void)ex.run_round(1);
  EXPECT_EQ(ex.pending(), 1u);  // the pushed task 100
}

TEST(SpecExecutor, TryAcquireReportsConflictWithoutAborting) {
  ThreadPool pool(1);
  std::atomic<int> denied{0};
  LockManager* locks = nullptr;
  SpeculativeExecutor ex(
      pool, 2,
      [&](TaskId, IterationContext& ctx) {
        // Simulate a pre-held foreign lock on item 1.
        if (!ctx.try_acquire(1)) denied.fetch_add(1);
      },
      8);
  locks = &ex.locks();
  ASSERT_TRUE(locks->try_acquire(1, 999999));  // foreign owner
  ex.push_initial(std::vector<TaskId>{0});
  const auto stats = ex.run_round(1);
  EXPECT_EQ(stats.committed, 1u);  // operator chose to continue
  EXPECT_EQ(denied.load(), 1);
  locks->release(1, 999999);
}

TEST(SpecExecutor, GrowItemsExtendsLockTable) {
  ThreadPool pool(1);
  SpeculativeExecutor ex(
      pool, 1,
      [&](TaskId t, IterationContext& ctx) {
        ctx.acquire(static_cast<std::uint32_t>(t));
      },
      9);
  ex.grow_items(100);
  ex.push_initial(std::vector<TaskId>{99});
  const auto stats = ex.run_round(1);
  EXPECT_EQ(stats.committed, 1u);
}

TEST(SpecExecutor, TotalsAccumulateAcrossRounds) {
  ThreadPool pool(2);
  SpeculativeExecutor ex(
      pool, 4,
      [](TaskId t, IterationContext& ctx) {
        ctx.acquire(static_cast<std::uint32_t>(t % 4));
      },
      10);
  std::vector<TaskId> tasks;
  for (TaskId t = 0; t < 12; ++t) tasks.push_back(t);
  ex.push_initial(tasks);
  while (!ex.done()) (void)ex.run_round(6);
  EXPECT_EQ(ex.totals().committed, 12u);
  EXPECT_GE(ex.totals().rounds, 2u);
  EXPECT_EQ(ex.totals().wasted_fraction(),
            static_cast<double>(ex.totals().aborted) /
                static_cast<double>(ex.totals().launched));
}

TEST(RunAdaptive, DrainsWorklistAndRecordsTrace) {
  ThreadPool pool(2);
  SpeculativeExecutor ex(
      pool, 8,
      [](TaskId t, IterationContext& ctx) {
        ctx.acquire(static_cast<std::uint32_t>(t % 8));
      },
      11);
  std::vector<TaskId> tasks;
  for (TaskId t = 0; t < 64; ++t) tasks.push_back(t);
  ex.push_initial(tasks);
  ControllerParams p;
  HybridController c(p);
  const auto trace = run_adaptive(ex, c);
  EXPECT_TRUE(ex.done());
  EXPECT_EQ(trace.total_committed(), 64u);
  EXPECT_FALSE(trace.steps.empty());
  EXPECT_EQ(trace.steps.front().m, p.m0);
}

TEST(RunAdaptive, BeforeRoundHookRuns) {
  ThreadPool pool(1);
  SpeculativeExecutor ex(
      pool, 1, [](TaskId, IterationContext& ctx) { ctx.acquire(0); }, 12);
  ex.push_initial(std::vector<TaskId>{0});
  int hook_calls = 0;
  AdaptiveRunConfig cfg;
  cfg.before_round = [&](SpeculativeExecutor&) { ++hook_calls; };
  FixedController c(1);
  (void)run_adaptive(ex, c, cfg);
  EXPECT_EQ(hook_calls, 1);
}

TEST(SpecExecutor, RecycledContextsStayCleanAcrossThousandsOfRounds) {
  // Arena contexts are reset, not reallocated, between rounds. Stale state
  // from a previous occupant of a slot (held locks, pushed tasks, undo
  // entries) must never leak into a later iteration: run a mutate+abort
  // workload through the same executor for thousands of rounds and check
  // the final state against the sequential oracle every time the worklist
  // drains.
  constexpr std::uint32_t kCells = 12;
  ThreadPool pool(2);
  std::vector<std::int64_t> cells(kCells, 0);
  Rng chaos(321);
  SpeculativeExecutor ex(
      pool, kCells,
      [&](TaskId t, IterationContext& ctx) {
        const auto base = static_cast<std::uint32_t>(t % kCells);
        for (std::uint32_t i = 0; i < 3; ++i) {
          const std::uint32_t cell = (base + i) % kCells;
          ctx.acquire(cell);
          cells[cell] += 1;
          ctx.on_abort([&cells, cell] { cells[cell] -= 1; });
        }
        if (t % 7 == 0) throw AbortIteration{};  // voluntary churn
      },
      /*seed=*/77, WorklistPolicy::kRandom);
  std::uint64_t waves = 0;
  std::uint64_t expected_total = 0;
  for (int wave = 0; wave < 40; ++wave) {
    std::vector<TaskId> tasks;
    for (TaskId t = 1; t <= 50; ++t) {
      if (t % 7 == 0) continue;  // would abort forever; keep it drainable
      tasks.push_back(t);
    }
    ex.push_initial(tasks);
    expected_total += static_cast<std::uint64_t>(tasks.size()) * 3;
    int rounds = 0;
    while (!ex.done() && rounds++ < 100000) {
      (void)ex.run_round(1 + static_cast<std::uint32_t>(chaos.below(16)));
    }
    ASSERT_TRUE(ex.done());
    ASSERT_TRUE(ex.locks().all_free());
    std::uint64_t total = 0;
    for (const auto c : cells) total += static_cast<std::uint64_t>(c);
    ASSERT_EQ(total, expected_total) << "wave " << wave;
    ++waves;
  }
  EXPECT_EQ(waves, 40u);
  EXPECT_GT(ex.totals().rounds, 100u);  // the arena really was recycled
}

TEST(RunAdaptive, MaxRoundsIsRespected) {
  ThreadPool pool(1);
  // Operator always aborts, so the worklist never drains.
  SpeculativeExecutor ex(
      pool, 1, [](TaskId, IterationContext&) -> void { throw AbortIteration{}; },
      13);
  ex.push_initial(std::vector<TaskId>{0});
  AdaptiveRunConfig cfg;
  cfg.max_rounds = 7;
  FixedController c(1);
  const auto trace = run_adaptive(ex, c, cfg);
  EXPECT_EQ(trace.steps.size(), 7u);
  EXPECT_FALSE(ex.done());
}

}  // namespace
}  // namespace optipar
