#include "rt/item_lock.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "support/thread_pool.hpp"

namespace optipar {
namespace {

TEST(LockManager, StartsAllFree) {
  LockManager lm(8);
  EXPECT_EQ(lm.size(), 8u);
  EXPECT_TRUE(lm.all_free());
  for (std::uint32_t i = 0; i < 8; ++i) {
    EXPECT_EQ(lm.owner(i), LockManager::kFree);
  }
}

TEST(LockManager, AcquireReleaseCycle) {
  LockManager lm(4);
  EXPECT_TRUE(lm.try_acquire(2, 7));
  EXPECT_EQ(lm.owner(2), 7u);
  EXPECT_FALSE(lm.all_free());
  lm.release(2, 7);
  EXPECT_TRUE(lm.all_free());
}

TEST(LockManager, ConflictingAcquireFails) {
  LockManager lm(4);
  EXPECT_TRUE(lm.try_acquire(1, 10));
  EXPECT_FALSE(lm.try_acquire(1, 11));
  EXPECT_EQ(lm.owner(1), 10u);
}

TEST(LockManager, ReentrantAcquireSucceeds) {
  LockManager lm(4);
  EXPECT_TRUE(lm.try_acquire(1, 10));
  EXPECT_TRUE(lm.try_acquire(1, 10));
  lm.release(1, 10);
  EXPECT_TRUE(lm.all_free());
}

TEST(LockManager, OutOfRangeThrows) {
  LockManager lm(4);
  EXPECT_THROW((void)lm.try_acquire(4, 0), std::out_of_range);
  EXPECT_THROW((void)lm.owner(9), std::out_of_range);
  EXPECT_THROW((void)lm.release(9, 0), std::out_of_range);
}

TEST(LockManager, GrowPreservesOwnersAndFreesNewSlots) {
  LockManager lm(2);
  ASSERT_TRUE(lm.try_acquire(0, 5));
  lm.grow(10);
  EXPECT_EQ(lm.size(), 10u);
  EXPECT_EQ(lm.owner(0), 5u);
  for (std::uint32_t i = 2; i < 10; ++i) {
    EXPECT_EQ(lm.owner(i), LockManager::kFree);
  }
  lm.grow(3);  // shrink request is a no-op
  EXPECT_EQ(lm.size(), 10u);
}

TEST(LockManager, ExactlyOneWinnerUnderContention) {
  LockManager lm(1);
  ThreadPool pool(4);
  std::atomic<int> winners{0};
  pool.run_on_workers(4, [&](std::size_t lane) {
    if (lm.try_acquire(0, static_cast<std::uint32_t>(lane))) {
      winners.fetch_add(1);
    }
  });
  EXPECT_EQ(winners.load(), 1);
  EXPECT_NE(lm.owner(0), LockManager::kFree);
}

TEST(LockManager, ManyItemsManyThreadsDisjointAcquires) {
  constexpr std::size_t kItems = 256;
  LockManager lm(kItems);
  ThreadPool pool(4);
  pool.parallel_for(kItems, [&](std::size_t i) {
    ASSERT_TRUE(lm.try_acquire(static_cast<std::uint32_t>(i),
                               static_cast<std::uint32_t>(i * 2 + 1)));
  });
  EXPECT_FALSE(lm.all_free());
  pool.parallel_for(kItems, [&](std::size_t i) {
    lm.release(static_cast<std::uint32_t>(i),
               static_cast<std::uint32_t>(i * 2 + 1));
  });
  EXPECT_TRUE(lm.all_free());
}

}  // namespace
}  // namespace optipar
