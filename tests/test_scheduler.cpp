// Scheduler backend contracts (DESIGN.md §14). Four families:
//  * random — the extracted backend replays the legacy constructor's draw
//    byte-for-byte at one lane (round stats, shared state, snapshot bytes);
//  * chromatic — zero aborts BY CONSTRUCTION on all seven application
//    kernels (coloring, MIS, SSSP, Boruvka, maxflow, survey propagation,
//    Delaunay refinement), with each app's correctness oracle intact;
//  * relaxed — the MultiQueue draw is a permutation of the pushed work
//    whose rank error stays within the expected O(queues) envelope;
//  * every backend serializes through save_state/load_state so a
//    kill-and-resume run replays the original byte-for-byte, and a
//    snapshot taken under one backend refuses to load under another.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <set>
#include <vector>

#include "apps/boruvka/boruvka.hpp"
#include "apps/coloring/coloring.hpp"
#include "apps/dmr/delaunay.hpp"
#include "apps/dmr/refine.hpp"
#include "apps/maxflow/maxflow.hpp"
#include "apps/mis/mis.hpp"
#include "apps/sp/survey.hpp"
#include "apps/sssp/sssp.hpp"
#include "graph/algos.hpp"
#include "graph/generators.hpp"
#include "graph/weighted_graph.hpp"
#include "rt/spec_executor.hpp"
#include "sched/relaxed_scheduler.hpp"
#include "support/snapshot/snapshot.hpp"
#include "support/thread_pool.hpp"

namespace optipar {
namespace {

RoundOptions options_for(sched::Backend backend) {
  RoundOptions opts;
  opts.scheduler = backend;
  return opts;
}

/// Closed-neighborhood footprint — the declared mirror of the coloring /
/// MIS operators' acquisition set.
sched::FootprintFn closed_neighborhood(const CsrGraph& g) {
  return [&g](TaskId t, std::vector<std::uint32_t>& fp) {
    const auto v = static_cast<NodeId>(t);
    fp.push_back(v);
    for (const NodeId u : g.neighbors(v)) fp.push_back(u);
  };
}

/// Drive `ex` to drain with a per-round hook (invalidation, relabeling,
/// lock-table growth). Returns total aborts.
template <typename Hook>
std::uint64_t drain(SpeculativeExecutor& ex, std::uint32_t m, Hook hook) {
  int guard = 0;
  while (!ex.done() && guard++ < 20000) {
    hook(ex);
    (void)ex.run_round(m);
  }
  EXPECT_TRUE(ex.done());
  return ex.totals().aborted;
}

std::uint64_t drain(SpeculativeExecutor& ex, std::uint32_t m) {
  return drain(ex, m, [](SpeculativeExecutor&) {});
}

void push_all(SpeculativeExecutor& ex, std::size_t n) {
  std::vector<TaskId> tasks(n);
  std::iota(tasks.begin(), tasks.end(), TaskId{0});
  ex.push_initial(tasks);
}

// ---------------------------------------------------------------------------
// Random backend: byte-identical extraction of the legacy draw
// ---------------------------------------------------------------------------

constexpr std::uint32_t kCells = 32;
constexpr std::uint32_t kTasks = 160;

struct GoldenRun {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> rounds;
  std::vector<std::int64_t> cells;
  std::vector<std::byte> state;
};

/// Two cells per task (one shared with a neighbor task): single-lane
/// rounds still mix commits and aborts because locks are held to the
/// round boundary.
TaskOperator cell_operator(std::vector<std::int64_t>& cells) {
  return [&cells](TaskId t, IterationContext& ctx) {
    const auto a = static_cast<std::uint32_t>(t % kCells);
    const auto b = static_cast<std::uint32_t>((t * 7 + 3) % kCells);
    ctx.acquire(a);
    cells[a] += 1;
    ctx.on_abort([&cells, a] { cells[a] -= 1; });
    ctx.acquire(b);
    cells[b] -= 2;
    ctx.on_abort([&cells, b] { cells[b] += 2; });
  };
}

sched::FootprintFn cell_footprint() {
  return [](TaskId t, std::vector<std::uint32_t>& fp) {
    fp.push_back(static_cast<std::uint32_t>(t % kCells));
    fp.push_back(static_cast<std::uint32_t>((t * 7 + 3) % kCells));
  };
}

/// Run the cell workload to quiescence at one lane. `legacy` selects the
/// pre-RoundOptions constructor (which must behave identically for the
/// random backend).
GoldenRun run_cells(bool legacy, sched::Backend backend,
                    std::uint64_t seed) {
  GoldenRun out;
  out.cells.assign(kCells, 0);
  ThreadPool pool(1);
  auto make = [&]() -> SpeculativeExecutor {
    if (legacy) {
      return SpeculativeExecutor(pool, kCells, cell_operator(out.cells),
                                 seed);
    }
    return SpeculativeExecutor(pool, kCells, cell_operator(out.cells), seed,
                               options_for(backend));
  };
  SpeculativeExecutor ex = make();
  if (backend == sched::Backend::kChromatic) {
    ex.set_footprint_function(cell_footprint());
  } else if (backend == sched::Backend::kRelaxed) {
    ex.set_priority_function([](TaskId t) { return t; });
  }
  push_all(ex, kTasks);
  int guard = 0;
  while (!ex.done() && guard++ < 10000) {
    const RoundStats s = ex.run_round(24);
    out.rounds.emplace_back(s.launched, s.committed);
  }
  EXPECT_TRUE(ex.done());
  EXPECT_EQ(ex.totals().committed, kTasks);
  snapshot::Writer w;
  ex.save_state(w);
  out.state = w.bytes();
  return out;
}

TEST(RandomBackend, MatchesLegacyConstructorByteIdentically) {
  const GoldenRun legacy = run_cells(true, sched::Backend::kRandom, 1234);
  const GoldenRun routed = run_cells(false, sched::Backend::kRandom, 1234);
  EXPECT_EQ(legacy.rounds, routed.rounds);
  EXPECT_EQ(legacy.cells, routed.cells);
  EXPECT_EQ(legacy.state, routed.state);
}

TEST(RandomBackend, SingleLaneRunsAreReproducible) {
  const GoldenRun a = run_cells(false, sched::Backend::kRandom, 77);
  const GoldenRun b = run_cells(false, sched::Backend::kRandom, 77);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.state, b.state);
}

// ---------------------------------------------------------------------------
// Chromatic backend: zero aborts on every application kernel
// ---------------------------------------------------------------------------

TEST(ChromaticZeroAbort, GreedyColoring) {
  Rng rng(7);
  const CsrGraph g = gen::random_with_average_degree(300, 8, rng);
  coloring::ColoringState state(g.num_nodes());
  ThreadPool pool(4);
  SpeculativeExecutor ex(pool, g.num_nodes(),
                         coloring::make_coloring_operator(g, state), 21,
                         options_for(sched::Backend::kChromatic));
  ex.set_footprint_function(closed_neighborhood(g));
  push_all(ex, g.num_nodes());
  EXPECT_EQ(drain(ex, 64), 0u);
  EXPECT_TRUE(state.is_proper(g));
}

TEST(ChromaticZeroAbort, MaximalIndependentSet) {
  Rng rng(8);
  const CsrGraph g = gen::random_with_average_degree(300, 12, rng);
  mis::MisState state(g.num_nodes());
  ThreadPool pool(4);
  SpeculativeExecutor ex(pool, g.num_nodes(),
                         mis::make_mis_operator(g, state), 22,
                         options_for(sched::Backend::kChromatic));
  ex.set_footprint_function(closed_neighborhood(g));
  push_all(ex, g.num_nodes());
  EXPECT_EQ(drain(ex, 64), 0u);
  EXPECT_TRUE(is_maximal_independent_set(g, state.in_set()));
}

TEST(ChromaticZeroAbort, Sssp) {
  Rng rng(9);
  const CsrGraph base = gen::random_with_average_degree(200, 6, rng);
  std::vector<WeightedEdgeTriple> edges;
  for (const auto& [u, v] : base.edges()) {
    edges.push_back({u, v, rng.uniform() * 10.0 + 0.1});
  }
  const WeightedGraph g =
      WeightedGraph::from_edges(base.num_nodes(), edges);
  sssp::DistanceTable dist(g.num_nodes(), 0);
  ThreadPool pool(4);
  SpeculativeExecutor ex(pool, g.num_nodes(),
                         sssp::make_sssp_operator(g, dist), 23,
                         options_for(sched::Backend::kChromatic));
  ex.set_footprint_function([&g](TaskId t, std::vector<std::uint32_t>& fp) {
    const auto v = static_cast<NodeId>(t);
    fp.push_back(v);
    for (const Arc& a : g.arcs(v)) fp.push_back(a.to);
  });
  push_all(ex, g.num_nodes());
  EXPECT_EQ(drain(ex, 48), 0u);
  const auto oracle = sssp::dijkstra(g, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (oracle[v] == sssp::kUnreachable) {
      EXPECT_EQ(dist.get(v), sssp::kUnreachable);
    } else {
      EXPECT_NEAR(dist.get(v), oracle[v], 1e-9);
    }
  }
}

TEST(ChromaticZeroAbort, BoruvkaMst) {
  Rng rng(10);
  const CsrGraph base = gen::random_with_average_degree(150, 6, rng);
  std::vector<boruvka::WeightedEdge> edges;
  for (const auto& [u, v] : base.edges()) {
    edges.push_back({u, v, rng.uniform() * 100.0 + 1e-3});
  }
  const double kruskal =
      boruvka::kruskal_mst_weight(base.num_nodes(), edges);
  boruvka::ContractionGraph graph(base.num_nodes(), edges);
  ThreadPool pool(4);
  SpeculativeExecutor ex(pool, base.num_nodes(),
                         boruvka::make_boruvka_operator(graph), 24,
                         options_for(sched::Backend::kChromatic));
  // Live closed neighborhood in the CONTRACTION graph: the operator
  // acquires v, its lightest neighbor, and all of N(v). The adjacency
  // mutates as supernodes merge, so the standing color assignment is
  // invalidated before every round.
  ex.set_footprint_function(
      [&graph](TaskId t, std::vector<std::uint32_t>& fp) {
        const auto v = static_cast<NodeId>(t);
        fp.push_back(v);
        for (const auto& [x, w] : graph.adjacency(v)) fp.push_back(x);
      });
  push_all(ex, base.num_nodes());
  const auto aborted = drain(
      ex, 32, [](SpeculativeExecutor& e) { e.invalidate_schedule(); });
  EXPECT_EQ(aborted, 0u);
  EXPECT_NEAR(graph.chosen_weight(), kruskal, 1e-6 * kruskal);
}

TEST(ChromaticZeroAbort, MaxflowPushRelabel) {
  // Layered random network s -> L1 -> L2 -> t with cross arcs.
  constexpr NodeId kN = 42;
  const NodeId s = 0;
  const NodeId t = kN - 1;
  maxflow::FlowNetwork net(kN);
  Rng rng(11);
  for (NodeId v = 1; v < 21; ++v) {
    net.add_arc(s, v, rng.uniform() * 8.0 + 1.0);
  }
  for (NodeId v = 1; v < 21; ++v) {
    for (int k = 0; k < 3; ++k) {
      const NodeId w = 21 + static_cast<NodeId>(rng.below(20));
      net.add_arc(v, w, rng.uniform() * 6.0 + 0.5);
    }
  }
  for (NodeId w = 21; w < 41; ++w) {
    net.add_arc(w, t, rng.uniform() * 8.0 + 1.0);
  }
  const double oracle = maxflow::edmonds_karp(net, s, t);
  net.reset_flow();

  maxflow::PushRelabelState state(kN, s);
  std::vector<TaskId> initial;
  auto& source_arcs = net.arcs(s);
  for (std::uint32_t i = 0; i < source_arcs.size(); ++i) {
    auto& a = source_arcs[i];
    if (a.capacity > 0.0) {
      net.push(s, i, a.capacity);
      state.set_excess(a.to, state.excess(a.to) + a.capacity);
      state.set_excess(s, state.excess(s) - a.capacity);
      if (a.to != t) initial.push_back(a.to);
    }
  }
  ThreadPool pool(4);
  SpeculativeExecutor ex(
      pool, kN, maxflow::make_push_relabel_operator(net, state, s, t), 25,
      options_for(sched::Backend::kChromatic));
  ex.set_footprint_function(
      [&net](TaskId task, std::vector<std::uint32_t>& fp) {
        const auto v = static_cast<NodeId>(task);
        fp.push_back(v);
        for (const auto& a : net.arcs(v)) fp.push_back(a.to);
      });
  ex.push_initial(initial);
  int rounds_since = 0;
  const auto aborted =
      drain(ex, 16, [&](SpeculativeExecutor&) {
        if (++rounds_since >= 64) {
          rounds_since = 0;
          maxflow::global_relabel(net, state, s, t);
        }
      });
  EXPECT_EQ(aborted, 0u);
  EXPECT_TRUE(net.is_feasible(s, t));
  EXPECT_NEAR(state.excess(t), oracle, 1e-9);
}

TEST(ChromaticZeroAbort, SurveyPropagation) {
  Rng rng(12);
  const sp::Formula formula = sp::random_ksat(60, 120, 3, rng);
  sp::SurveyState state(formula, rng);
  constexpr double kTolerance = 1e-2;

  // The clause-update operator, mirroring run_survey_propagation_adaptive:
  // acquire clause a plus every clause sharing a variable, recompute a's
  // surveys, re-push moved neighbors (duplicate-free via scheduled flags).
  std::vector<std::uint8_t> scheduled(formula.num_clauses(), 1);
  auto op = [&state, &formula, &scheduled](TaskId task,
                                           IterationContext& ctx) {
    const auto a = static_cast<std::uint32_t>(task);
    ctx.acquire(a);
    scheduled[a] = 0;
    ctx.on_abort([&scheduled, a] { scheduled[a] = 1; });
    std::set<std::uint32_t> neighborhood;
    for (const sp::Literal& lit : formula.clause(a).literals) {
      for (const std::uint32_t b : formula.clauses_of(lit.var)) {
        if (b != a) neighborhood.insert(b);
      }
    }
    for (const std::uint32_t b : neighborhood) ctx.acquire(b);
    const auto fresh = state.compute_clause(a);
    double delta = 0.0;
    for (std::uint32_t slot = 0; slot < fresh.size(); ++slot) {
      const double old = state.eta(a, slot);
      delta = std::max(delta, std::abs(fresh[slot] - old));
      if (fresh[slot] != old) {
        state.set_eta(a, slot, fresh[slot]);
        ctx.on_abort(
            [&state, a, slot, old] { state.set_eta(a, slot, old); });
      }
    }
    if (delta >= kTolerance) {
      for (const std::uint32_t b : neighborhood) {
        if (scheduled[b] == 0) {
          scheduled[b] = 1;
          ctx.on_abort([&scheduled, b] { scheduled[b] = 0; });
          ctx.push(b);
        }
      }
    }
  };

  ThreadPool pool(4);
  SpeculativeExecutor ex(pool, formula.num_clauses(), op, 26,
                         options_for(sched::Backend::kChromatic));
  ex.set_footprint_function(
      [&formula](TaskId task, std::vector<std::uint32_t>& fp) {
        const auto a = static_cast<std::uint32_t>(task);
        fp.push_back(a);
        for (const sp::Literal& lit : formula.clause(a).literals) {
          for (const std::uint32_t b : formula.clauses_of(lit.var)) {
            fp.push_back(b);
          }
        }
      });
  push_all(ex, formula.num_clauses());
  EXPECT_EQ(drain(ex, 24), 0u);
  for (std::uint32_t a = 0; a < formula.num_clauses(); ++a) {
    EXPECT_LT(state.clause_residual(a), kTolerance);
  }
}

TEST(ChromaticZeroAbort, DelaunayRefinement) {
  Rng rng(13);
  std::vector<dmr::Point2> pts;
  for (int i = 0; i < 120; ++i) {
    pts.push_back({rng.uniform() * 100.0, rng.uniform() * 100.0});
  }
  dmr::Mesh mesh;
  dmr::build_delaunay(mesh, pts, 16.0);
  dmr::RefineQuality q;
  q.min_angle_deg = 25.0;
  q.min_edge = 2.0;
  q.set_domain(pts);

  ThreadPool pool(4);
  SpeculativeExecutor ex(pool, mesh.num_triangle_slots(),
                         dmr::make_refine_operator(mesh, q), 27,
                         options_for(sched::Backend::kChromatic));
  // Declared footprint of a bad triangle: the Bowyer–Watson cavity + ring
  // of BOTH candidate insertion points (circumcenter, centroid). refine_one
  // falls back from the first to the second on degenerate insertions, so
  // declaring their union keeps the declaration a superset of whatever the
  // operator ends up locking. The mesh mutates every round: invalidate.
  ex.set_footprint_function(
      [&mesh, q](TaskId task, std::vector<std::uint32_t>& fp) {
        const auto t = static_cast<dmr::TriId>(task);
        fp.push_back(t);
        if (!dmr::is_bad(mesh, t, q)) return;
        const auto add = [&fp](const dmr::CavityFootprint& c) {
          for (const dmr::TriId tri : c.cavity) fp.push_back(tri);
          for (const dmr::TriId tri : c.ring) fp.push_back(tri);
        };
        const dmr::Point2 center = mesh.circumcenter_of(t);
        if (std::isfinite(center.x) && std::isfinite(center.y) &&
            q.in_domain(center)) {
          add(dmr::probe_cavity(mesh, center, t));
        }
        const dmr::Point2 centroid{
            (mesh.corner(t, 0).x + mesh.corner(t, 1).x +
             mesh.corner(t, 2).x) /
                3.0,
            (mesh.corner(t, 0).y + mesh.corner(t, 1).y +
             mesh.corner(t, 2).y) /
                3.0};
        add(dmr::probe_cavity(mesh, centroid, t));
      });
  const auto initial = dmr::bad_triangles(mesh, q);
  std::vector<TaskId> tasks(initial.begin(), initial.end());
  ex.push_initial(tasks);
  const auto aborted = drain(ex, 16, [&mesh](SpeculativeExecutor& e) {
    e.grow_items(mesh.num_triangle_slots());
    e.invalidate_schedule();
  });
  EXPECT_EQ(aborted, 0u);
  EXPECT_TRUE(dmr::bad_triangles(mesh, q).empty());
  EXPECT_TRUE(mesh.validate());
}

// ---------------------------------------------------------------------------
// Relaxed backend: bounded rank error
// ---------------------------------------------------------------------------

TEST(RelaxedScheduler, DrawIsAPermutationWithBoundedRankError) {
  sched::RelaxedScheduler rs(123, 4, 4);  // 16 queues
  rs.set_priority_function([](TaskId t) { return t; });
  constexpr std::size_t kN = 1000;
  std::vector<TaskId> tasks(kN);
  std::iota(tasks.begin(), tasks.end(), TaskId{0});
  Rng shuffle_rng(5);
  shuffle_rng.shuffle(std::span<TaskId>(tasks));
  rs.push(tasks);
  ASSERT_EQ(rs.size(), kN);

  std::vector<TaskId> active;
  Rng rng(99);
  ASSERT_EQ(rs.begin_round(kN, active, rng), kN);
  const std::set<TaskId> seen(active.begin(), active.end());
  EXPECT_EQ(seen.size(), kN);  // every task exactly once

  // Priority == task id, so the global rank of active[i] IS its id. The
  // MultiQueue analysis (PAPERS.md) gives O(queues) expected rank error
  // per pop; assert a generous deterministic envelope for this seed.
  const double q = static_cast<double>(rs.queue_count());
  double total = 0.0;
  double worst = 0.0;
  for (std::size_t i = 0; i < kN; ++i) {
    const double err = std::abs(static_cast<double>(active[i]) -
                                static_cast<double>(i));
    total += err;
    worst = std::max(worst, err);
  }
  EXPECT_LE(total / static_cast<double>(kN), 2.0 * q);
  EXPECT_LE(worst, 16.0 * q);
}

TEST(RelaxedScheduler, ExecutorDrainsAndCommitsEverything) {
  const GoldenRun run = run_cells(false, sched::Backend::kRelaxed, 31);
  std::int64_t sum = 0;
  for (const auto c : run.cells) sum += c;
  EXPECT_EQ(sum, -static_cast<std::int64_t>(kTasks));  // +1 -2 per task
}

// ---------------------------------------------------------------------------
// Kill-and-resume: per-backend snapshot round trips
// ---------------------------------------------------------------------------

struct ResumableRig {
  std::vector<std::int64_t> cells = std::vector<std::int64_t>(kCells, 0);
  ThreadPool pool{1};
  SpeculativeExecutor ex;

  ResumableRig(sched::Backend backend, std::uint64_t seed)
      : ex(pool, kCells, cell_operator(cells), seed, options_for(backend)) {
    if (backend == sched::Backend::kChromatic) {
      ex.set_footprint_function(cell_footprint());
    } else if (backend == sched::Backend::kRelaxed) {
      ex.set_priority_function([](TaskId t) { return t; });
    }
  }
};

TEST(KillResume, EveryBackendRoundTripsByteIdentically) {
  for (const auto backend :
       {sched::Backend::kRandom, sched::Backend::kChromatic,
        sched::Backend::kRelaxed}) {
    SCOPED_TRACE(sched::backend_name(backend));

    // Reference run: snapshot mid-flight, then record the suffix.
    ResumableRig a(backend, 555);
    push_all(a.ex, kTasks);
    for (int r = 0; r < 3 && !a.ex.done(); ++r) (void)a.ex.run_round(24);
    snapshot::Writer mid;
    a.ex.save_state(mid);
    std::vector<std::pair<std::uint32_t, std::uint32_t>> suffix_a;
    int guard = 0;
    while (!a.ex.done() && guard++ < 10000) {
      const RoundStats s = a.ex.run_round(24);
      suffix_a.emplace_back(s.launched, s.committed);
    }
    ASSERT_TRUE(a.ex.done());
    snapshot::Writer end_a;
    a.ex.save_state(end_a);

    // Resumed run: a FRESH executor restored from the mid snapshot must
    // replay the suffix byte-for-byte.
    ResumableRig b(backend, 555);
    snapshot::Reader r(mid.bytes());
    b.ex.load_state(r);
    EXPECT_NO_THROW(r.expect_end());
    std::vector<std::pair<std::uint32_t, std::uint32_t>> suffix_b;
    guard = 0;
    while (!b.ex.done() && guard++ < 10000) {
      const RoundStats s = b.ex.run_round(24);
      suffix_b.emplace_back(s.launched, s.committed);
    }
    ASSERT_TRUE(b.ex.done());
    snapshot::Writer end_b;
    b.ex.save_state(end_b);

    EXPECT_EQ(suffix_a, suffix_b);
    EXPECT_EQ(end_a.bytes(), end_b.bytes());
  }
}

TEST(KillResume, BackendMismatchIsRejected) {
  ResumableRig a(sched::Backend::kRandom, 777);
  push_all(a.ex, kTasks);
  (void)a.ex.run_round(16);
  snapshot::Writer w;
  a.ex.save_state(w);

  ResumableRig b(sched::Backend::kChromatic, 777);
  snapshot::Reader r(w.bytes());
  try {
    b.ex.load_state(r);
    FAIL() << "expected SnapshotError{kMismatch}";
  } catch (const snapshot::SnapshotError& e) {
    EXPECT_EQ(e.kind(), snapshot::SnapshotError::Kind::kMismatch);
  }
}

// ---------------------------------------------------------------------------
// Configuration error paths
// ---------------------------------------------------------------------------

TEST(SchedulerConfig, ChromaticRequiresFootprintFunction) {
  ThreadPool pool(1);
  std::vector<std::int64_t> cells(kCells, 0);
  SpeculativeExecutor ex(pool, kCells, cell_operator(cells), 1,
                         options_for(sched::Backend::kChromatic));
  std::vector<TaskId> tasks{1, 2, 3};
  EXPECT_THROW(ex.push_initial(tasks), std::logic_error);
}

TEST(SchedulerConfig, RelaxedRequiresPriorityFunction) {
  ThreadPool pool(1);
  std::vector<std::int64_t> cells(kCells, 0);
  SpeculativeExecutor ex(pool, kCells, cell_operator(cells), 1,
                         options_for(sched::Backend::kRelaxed));
  std::vector<TaskId> tasks{1, 2, 3};
  EXPECT_THROW(ex.push_initial(tasks), std::logic_error);
}

TEST(SchedulerConfig, FootprintFunctionNeedsChromaticBackend) {
  ThreadPool pool(1);
  std::vector<std::int64_t> cells(kCells, 0);
  SpeculativeExecutor ex(pool, kCells, cell_operator(cells), 1,
                         options_for(sched::Backend::kRandom));
  EXPECT_THROW(ex.set_footprint_function(cell_footprint()),
               std::logic_error);
}

TEST(SchedulerConfig, WorklistKnobsAreRandomBackendOnly) {
  ThreadPool pool(1);
  std::vector<std::int64_t> cells(kCells, 0);
  RoundOptions opts;
  opts.worklist = WorklistPolicy::kFifo;
  opts.scheduler = sched::Backend::kChromatic;
  EXPECT_THROW(SpeculativeExecutor(pool, kCells, cell_operator(cells), 1,
                                   opts),
               std::invalid_argument);
}

TEST(SchedulerConfig, BackendNamesRoundTrip) {
  using sched::Backend;
  EXPECT_EQ(sched::parse_backend("random"), Backend::kRandom);
  EXPECT_EQ(sched::parse_backend("chromatic"), Backend::kChromatic);
  EXPECT_EQ(sched::parse_backend("relaxed"), Backend::kRelaxed);
  EXPECT_FALSE(sched::parse_backend("bogus").has_value());
  EXPECT_FALSE(sched::parse_backend("").has_value());
  for (const auto b :
       {Backend::kRandom, Backend::kChromatic, Backend::kRelaxed}) {
    EXPECT_EQ(sched::parse_backend(sched::backend_name(b)), b);
  }
}

}  // namespace
}  // namespace optipar
