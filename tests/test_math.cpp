#include "support/math.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace optipar {
namespace {

TEST(KahanSum, EmptyIsZero) { EXPECT_EQ(KahanSum{}.value(), 0.0); }

TEST(KahanSum, SimpleSum) {
  KahanSum s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.value(), 5050.0);
}

TEST(KahanSum, CompensatesTinyAddends) {
  // Naive summation of 1 + 1e-16 * 1e4 loses every addend; Kahan keeps them.
  KahanSum s;
  s.add(1.0);
  for (int i = 0; i < 10000; ++i) s.add(1e-16);
  EXPECT_NEAR(s.value(), 1.0 + 1e-12, 1e-15);
}

TEST(FallingRatioProduct, MatchesDirectEvaluation) {
  // Π_{i=1..m} (n-d-i)/(n+1-i) with small numbers, vs a direct loop.
  const double n = 30, d = 4;
  for (std::uint64_t m = 0; m <= 20; ++m) {
    double direct = 1.0;
    for (std::uint64_t i = 1; i <= m; ++i) {
      direct *= (n - d - static_cast<double>(i)) /
                (n + 1 - static_cast<double>(i));
    }
    EXPECT_NEAR(falling_ratio_product(n - d, n + 1, m), direct, 1e-12)
        << "m=" << m;
  }
}

TEST(FallingRatioProduct, EmptyProductIsOne) {
  EXPECT_DOUBLE_EQ(falling_ratio_product(10, 20, 0), 1.0);
}

TEST(FallingRatioProduct, ZeroWhenNumeratorDepletes) {
  // num0 = 5: factor i=5 gives 0 → whole product 0 for m >= 5.
  EXPECT_DOUBLE_EQ(falling_ratio_product(5, 100, 5), 0.0);
  EXPECT_DOUBLE_EQ(falling_ratio_product(5, 100, 50), 0.0);
  EXPECT_GT(falling_ratio_product(5, 100, 4), 0.0);
}

TEST(FallingRatioProduct, StableForLongProducts) {
  // n = 1e6, m = 5e5: log-space evaluation must neither under- nor
  // overflow and stays within [0, 1] for d >= 0.
  const double v = falling_ratio_product(1e6 - 10, 1e6 + 1, 500000);
  EXPECT_GT(v, 0.0);
  EXPECT_LT(v, 1.0);
}

TEST(FiniteDifference, FirstOrder) {
  const std::vector<double> f = {1, 4, 9, 16, 25};
  const auto d = finite_difference(f);
  ASSERT_EQ(d.size(), 4u);
  EXPECT_DOUBLE_EQ(d[0], 3);
  EXPECT_DOUBLE_EQ(d[3], 9);
}

TEST(FiniteDifference, SecondOrderOfQuadraticIsConstant) {
  std::vector<double> f;
  for (int k = 0; k < 10; ++k) f.push_back(k * k);
  const auto d2 = finite_difference(f, 2);
  ASSERT_EQ(d2.size(), 8u);
  for (const double v : d2) EXPECT_DOUBLE_EQ(v, 2.0);
}

TEST(FiniteDifference, ZeroOrderIsIdentity) {
  const std::vector<double> f = {3, 1, 4};
  EXPECT_EQ(finite_difference(f, 0), f);
}

TEST(FiniteDifference, ShortInputGivesEmpty) {
  EXPECT_TRUE(finite_difference({1.0}).empty());
  EXPECT_TRUE(finite_difference({}).empty());
}

TEST(LogBinomial, SmallValues) {
  EXPECT_NEAR(std::exp(log_binomial(5, 2)), 10.0, 1e-9);
  EXPECT_NEAR(std::exp(log_binomial(10, 0)), 1.0, 1e-9);
  EXPECT_NEAR(std::exp(log_binomial(10, 10)), 1.0, 1e-9);
}

TEST(LogBinomial, OutOfRangeIsMinusInfinity) {
  EXPECT_EQ(log_binomial(5, 6), -std::numeric_limits<double>::infinity());
  EXPECT_EQ(log_binomial(5, -1), -std::numeric_limits<double>::infinity());
}

TEST(MonotoneBisect, FindsThreshold) {
  // f(m) = m^2; smallest m with f(m) >= 50 is 8.
  const auto result = monotone_bisect(
      0, 100, 50.0, [](std::int64_t m) { return static_cast<double>(m * m); });
  EXPECT_EQ(result, 8);
}

TEST(MonotoneBisect, ReturnsHiWhenNeverReached) {
  const auto result =
      monotone_bisect(0, 10, 1e9, [](std::int64_t) { return 0.0; });
  EXPECT_EQ(result, 10);
}

TEST(MonotoneBisect, ReturnsLoWhenImmediatelySatisfied) {
  const auto result =
      monotone_bisect(3, 10, -1.0, [](std::int64_t) { return 0.0; });
  EXPECT_EQ(result, 3);
}

}  // namespace
}  // namespace optipar
