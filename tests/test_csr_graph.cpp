#include "graph/csr_graph.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace optipar {
namespace {

TEST(CsrGraph, EmptyGraph) {
  const auto g = CsrGraph::from_edges(0, {});
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_DOUBLE_EQ(g.average_degree(), 0.0);
  EXPECT_TRUE(g.validate());
}

TEST(CsrGraph, IsolatedNodes) {
  const auto g = CsrGraph::from_edges(5, {});
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(g.degree(v), 0u);
  EXPECT_TRUE(g.validate());
}

TEST(CsrGraph, TriangleBasics) {
  const auto g = CsrGraph::from_edges(3, {{0, 1}, {1, 2}, {2, 0}});
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_DOUBLE_EQ(g.average_degree(), 2.0);
  EXPECT_EQ(g.max_degree(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(2, 0));
  EXPECT_TRUE(g.validate());
}

TEST(CsrGraph, NeighborsAreSortedAndDeduplicated) {
  const auto g = CsrGraph::from_edges(
      4, {{3, 0}, {0, 1}, {1, 0}, {0, 2}, {2, 0}, {0, 3}});
  const auto nbrs = g.neighbors(0);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(nbrs[0], 1u);
  EXPECT_EQ(nbrs[1], 2u);
  EXPECT_EQ(nbrs[2], 3u);
  EXPECT_EQ(g.num_edges(), 3u);
}

TEST(CsrGraph, RejectsSelfLoops) {
  EXPECT_THROW((void)CsrGraph::from_edges(3, {{1, 1}}), std::invalid_argument);
}

TEST(CsrGraph, RejectsOutOfRangeEndpoints) {
  EXPECT_THROW((void)CsrGraph::from_edges(3, {{0, 3}}), std::invalid_argument);
  EXPECT_THROW((void)CsrGraph::from_edges(3, {{7, 0}}), std::invalid_argument);
}

TEST(CsrGraph, HasEdgeNegativeCases) {
  const auto g = CsrGraph::from_edges(4, {{0, 1}, {2, 3}});
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(1, 3));
  EXPECT_FALSE(g.has_edge(0, 3));
}

TEST(CsrGraph, EdgesRoundTrip) {
  const EdgeList original = {{0, 1}, {0, 2}, {1, 3}, {2, 3}};
  const auto g = CsrGraph::from_edges(4, original);
  const auto back = g.edges();
  ASSERT_EQ(back.size(), original.size());
  const auto g2 = CsrGraph::from_edges(4, back);
  EXPECT_EQ(g2.num_edges(), g.num_edges());
  for (const auto& [u, v] : original) EXPECT_TRUE(g2.has_edge(u, v));
}

TEST(CsrGraph, EdgesAreCanonical) {
  const auto g = CsrGraph::from_edges(3, {{2, 1}});
  const auto edges = g.edges();
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_LT(edges[0].first, edges[0].second);
}

TEST(CsrGraph, AverageDegreeOfStar) {
  // Star with 9 leaves: 9 edges, 10 nodes -> average degree 1.8.
  EdgeList edges;
  for (NodeId i = 1; i <= 9; ++i) edges.emplace_back(0, i);
  const auto g = CsrGraph::from_edges(10, edges);
  EXPECT_DOUBLE_EQ(g.average_degree(), 1.8);
  EXPECT_EQ(g.max_degree(), 9u);
}

}  // namespace
}  // namespace optipar
