#include <gtest/gtest.h>

#include <numeric>
#include <span>
#include <stdexcept>

#include "apps/coloring/coloring.hpp"
#include "apps/mis/mis.hpp"
#include "control/baselines.hpp"
#include "control/hybrid.hpp"
#include "graph/algos.hpp"
#include "graph/generators.hpp"

namespace optipar {
namespace {

struct GraphCase {
  const char* name;
  CsrGraph graph;
};

std::vector<GraphCase> graph_cases() {
  Rng rng(1);
  std::vector<GraphCase> cases;
  cases.push_back({"gnm", gen::gnm_random(150, 600, rng)});
  cases.push_back({"cliques", gen::union_of_cliques(120, 5)});
  cases.push_back({"grid", gen::grid_2d(12, 12)});
  cases.push_back({"star", gen::star(80)});
  cases.push_back({"edgeless", CsrGraph::from_edges(50, {})});
  cases.push_back({"complete", gen::complete(25)});
  return cases;
}

TEST(MisState, Accessors) {
  mis::MisState s(3);
  EXPECT_FALSE(s.all_decided());
  s.set(0, mis::NodeState::kIn);
  s.set(1, mis::NodeState::kOut);
  s.set(2, mis::NodeState::kOut);
  EXPECT_TRUE(s.all_decided());
  EXPECT_EQ(s.in_set(), std::vector<NodeId>{0});
}

TEST(MisAdaptive, ProducesMaximalIndependentSetOnAllFamilies) {
  ThreadPool pool(4);
  for (auto& c : graph_cases()) {
    ControllerParams p;
    HybridController controller(p);
    const auto result = mis::mis_adaptive(c.graph, controller, pool, 7);
    EXPECT_TRUE(is_independent_set(c.graph, result.independent_set))
        << c.name;
    EXPECT_TRUE(is_maximal_independent_set(c.graph, result.independent_set))
        << c.name;
  }
}

TEST(MisAdaptive, EdgelessGraphTakesEverything) {
  ThreadPool pool(2);
  const auto g = CsrGraph::from_edges(30, {});
  ControllerParams p;
  HybridController controller(p);
  const auto result = mis::mis_adaptive(g, controller, pool, 8);
  EXPECT_EQ(result.independent_set.size(), 30u);
}

TEST(MisAdaptive, CompleteGraphTakesExactlyOne) {
  ThreadPool pool(2);
  const auto g = gen::complete(20);
  ControllerParams p;
  HybridController controller(p);
  const auto result = mis::mis_adaptive(g, controller, pool, 9);
  EXPECT_EQ(result.independent_set.size(), 1u);
}

TEST(MisAdaptive, RespectsTuranOnRegularGraph) {
  ThreadPool pool(4);
  Rng rng(10);
  const auto g = gen::random_regular(120, 6, rng);
  ControllerParams p;
  HybridController controller(p);
  const auto result = mis::mis_adaptive(g, controller, pool, 11);
  // Any maximal IS in a d-regular graph has at least n/(d+1) nodes.
  EXPECT_GE(result.independent_set.size(), 120u / 7u);
}

/// Branchy reference for the SIMD greedy sweep: first-come-first-served
/// over `order`, a node enters iff no neighbor already did.
std::vector<NodeId> greedy_sweep_reference(const CsrGraph& g,
                                           std::span<const NodeId> order) {
  std::vector<bool> in(g.num_nodes(), false);
  for (const NodeId v : order) {
    bool blocked = false;
    for (const NodeId w : g.neighbors(v)) {
      if (in[w]) {
        blocked = true;
        break;
      }
    }
    if (!blocked) in[v] = true;
  }
  std::vector<NodeId> out;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (in[v]) out.push_back(v);
  }
  return out;
}

TEST(GreedySweep, MatchesBranchyReferenceOnAllFamilies) {
  Rng rng(21);
  for (auto& c : graph_cases()) {
    std::vector<NodeId> order(c.graph.num_nodes());
    std::iota(order.begin(), order.end(), NodeId{0});
    for (int perm = 0; perm < 4; ++perm) {
      for (std::size_t i = order.size(); i > 1; --i) {
        std::swap(order[i - 1], order[rng.below(i)]);
      }
      const auto simd_set = mis::greedy_sweep(c.graph, order);
      EXPECT_EQ(simd_set, greedy_sweep_reference(c.graph, order))
          << c.name << " perm " << perm;
      EXPECT_TRUE(is_independent_set(c.graph, simd_set)) << c.name;
      EXPECT_TRUE(is_maximal_independent_set(c.graph, simd_set)) << c.name;
    }
  }
}

TEST(GreedySweep, RejectsMalformedOrders) {
  const auto g = gen::path(4);
  std::vector<NodeId> short_order{0, 1};
  EXPECT_THROW((void)mis::greedy_sweep(g, short_order),
               std::invalid_argument);
  std::vector<NodeId> out_of_range{0, 1, 2, 99};
  EXPECT_THROW((void)mis::greedy_sweep(g, out_of_range),
               std::invalid_argument);
}

TEST(ColoringState, ColorsUsedAndProperness) {
  const auto g = gen::path(3);
  coloring::ColoringState s(3);
  EXPECT_EQ(s.colors_used(), 0u);
  EXPECT_FALSE(s.is_proper(g));
  s.set_color(0, 0);
  s.set_color(1, 1);
  s.set_color(2, 0);
  EXPECT_EQ(s.colors_used(), 2u);
  EXPECT_TRUE(s.is_proper(g));
  s.set_color(2, 1);  // clashes with node 1
  EXPECT_FALSE(s.is_proper(g));
}

TEST(ColoringAdaptive, ProperColoringOnAllFamilies) {
  ThreadPool pool(4);
  for (auto& c : graph_cases()) {
    ControllerParams p;
    HybridController controller(p);
    const auto result =
        coloring::coloring_adaptive(c.graph, controller, pool, 12);
    EXPECT_TRUE(result.proper) << c.name;
    EXPECT_LE(result.colors_used, c.graph.max_degree() + 1) << c.name;
  }
}

TEST(ColoringAdaptive, BipartiteGridUsesFewColors) {
  ThreadPool pool(2);
  const auto g = gen::grid_2d(10, 10);
  ControllerParams p;
  HybridController controller(p);
  const auto result = coloring::coloring_adaptive(g, controller, pool, 13);
  EXPECT_TRUE(result.proper);
  // Greedy on a bipartite grid can exceed 2 but stays well under Δ+1 = 5
  // in practice; assert the hard Δ+1 bound and a sane typical value.
  EXPECT_LE(result.colors_used, 5u);
}

TEST(ColoringAdaptive, CompleteGraphNeedsExactlyN) {
  ThreadPool pool(2);
  const auto g = gen::complete(12);
  ControllerParams p;
  HybridController controller(p);
  const auto result = coloring::coloring_adaptive(g, controller, pool, 14);
  EXPECT_TRUE(result.proper);
  EXPECT_EQ(result.colors_used, 12u);
}

TEST(ColoringAdaptive, FixedControllerAlsoProper) {
  ThreadPool pool(4);
  Rng rng(15);
  const auto g = gen::gnm_random(200, 1000, rng);
  FixedController controller(32);
  const auto result = coloring::coloring_adaptive(g, controller, pool, 16);
  EXPECT_TRUE(result.proper);
  EXPECT_LE(result.colors_used, g.max_degree() + 1);
}

TEST(MisAndColoring, HighContentionStillTerminates) {
  // A star is the worst case: every task needs the hub's lock.
  ThreadPool pool(4);
  const auto g = gen::star(100);
  ControllerParams p;
  HybridController c1(p);
  const auto mis_result = mis::mis_adaptive(g, c1, pool, 17);
  EXPECT_TRUE(is_maximal_independent_set(g, mis_result.independent_set));
  HybridController c2(p);
  const auto col_result = coloring::coloring_adaptive(g, c2, pool, 18);
  EXPECT_TRUE(col_result.proper);
  EXPECT_EQ(col_result.colors_used, 2u);
}

}  // namespace
}  // namespace optipar
