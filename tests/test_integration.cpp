// End-to-end properties mirroring the paper's evaluation artifacts:
// Fig. 2's curve ordering, Fig. 3's convergence behavior, and §4.1's
// adaptation claims — each at test-sized scale (the bench binaries run the
// full-sized versions).
#include <gtest/gtest.h>

#include <memory>

#include "control/baselines.hpp"
#include "control/hybrid.hpp"
#include "control/recurrence.hpp"
#include "graph/generators.hpp"
#include "model/conflict_ratio.hpp"
#include "model/theory.hpp"
#include "sim/profile.hpp"
#include "sim/run_loop.hpp"

namespace optipar {
namespace {

TEST(Fig2Shape, WorstCaseBoundDominatesEmpiricalCurves) {
  // n = 340, d = 16 ((d+1) | n): the Thm. 3 bound must dominate both the
  // random graph and the union-of-cliques curve at every m.
  const std::uint32_t n = 340, d = 16;
  Rng rng(1);
  const auto random_g = gen::random_with_average_degree(n, d, rng);
  const auto cliques_g = gen::union_of_cliques(n, d);

  const auto random_curve = estimate_conflict_curve(random_g, 600, rng);
  const auto cliques_curve = estimate_conflict_curve(cliques_g, 600, rng);

  for (std::uint32_t m = 1; m <= n; m += 7) {
    const double bound = theory::conflict_ratio_bound_exact(n, d, m);
    EXPECT_LE(random_curve.r_bar(m),
              bound + 3 * random_curve.r_bar_ci95(m) + 1e-9)
        << "m=" << m;
    EXPECT_LE(cliques_curve.r_bar(m),
              bound + 3 * cliques_curve.r_bar_ci95(m) + 1e-9)
        << "m=" << m;
  }
}

TEST(Fig2Shape, AllCurvesShareTheInitialSlope) {
  // Prop. 2: at m = 1 the derivative depends only on (n, d), so the three
  // Fig. 2 curves coincide initially.
  const std::uint32_t n = 340, d = 16;
  Rng rng(2);
  const auto random_g = gen::random_with_average_degree(n, d, rng);
  const auto cliques_g = gen::union_of_cliques(n, d);
  const double predicted = theory::initial_derivative(n, d);

  const auto c1 = estimate_conflict_curve(random_g, 30000, rng);
  const auto c2 = estimate_conflict_curve(cliques_g, 30000, rng);
  EXPECT_NEAR(c1.r_bar(2) - c1.r_bar(1), predicted, 4 * c1.r_bar_ci95(2));
  EXPECT_NEAR(c2.r_bar(2) - c2.r_bar(1), predicted, 4 * c2.r_bar_ci95(2));
}

TEST(Fig2Shape, CliquesSaturateAboveRandomGraphAtLargeM) {
  // The union-of-cliques curve (the worst case) sits above the random
  // graph curve once m is an appreciable fraction of n.
  const std::uint32_t n = 340, d = 16;
  Rng rng(3);
  const auto random_g = gen::random_with_average_degree(n, d, rng);
  const auto cliques_g = gen::union_of_cliques(n, d);
  const auto cr = estimate_conflict_curve(random_g, 400, rng);
  const auto cc = estimate_conflict_curve(cliques_g, 400, rng);
  for (const std::uint32_t m : {n / 4, n / 2, n}) {
    EXPECT_GT(cc.r_bar(m) + 3 * cc.r_bar_ci95(m),
              cr.r_bar(m) - 3 * cr.r_bar_ci95(m))
        << "m=" << m;
  }
}

TEST(Fig3Shape, HybridConvergesWithinTensOfSteps) {
  // Paper §4.1: "in about 15 steps the controller converges close to the
  // desired μ value" (n = 2000 random graph, ρ = 20%, m0 = 2). Windows of
  // T = 4 rounds make that ~4 control updates; we allow some slack.
  Rng rng(4);
  const auto g = gen::random_with_average_degree(2000, 16, rng);
  const auto mu = find_mu(g, 0.20, 400, rng);
  ASSERT_GT(mu, 50u);

  StationaryWorkload w(g);
  ControllerParams p;
  p.rho = 0.20;
  HybridController c(p);
  RunLoopConfig cfg;
  cfg.max_steps = 200;
  const auto trace = run_controlled(c, w, cfg, rng);
  const auto conv = trace.convergence_step(mu, 0.35, 4);
  EXPECT_LE(conv, 40u) << "mu=" << mu;
}

TEST(Fig3Shape, HybridConvergesFasterThanRecurrenceAAlone) {
  Rng rng(5);
  const auto g = gen::random_with_average_degree(2000, 16, rng);
  const auto mu = find_mu(g, 0.20, 400, rng);

  auto run_with = [&](Controller& c) {
    StationaryWorkload w(g);
    RunLoopConfig cfg;
    cfg.max_steps = 400;
    Rng run_rng(6);
    return run_controlled(c, w, cfg, run_rng);
  };

  ControllerParams p;
  p.rho = 0.20;
  HybridController hybrid(p);
  RecurrenceAController a_only(p);
  const auto conv_hybrid =
      run_with(hybrid).convergence_step(mu, 0.35, 4);
  const auto conv_a = run_with(a_only).convergence_step(mu, 0.35, 4);
  EXPECT_LT(conv_hybrid * 3, conv_a + 3);  // hybrid is several times faster
}

TEST(Fig3Shape, SteadyStateRatioTracksRho) {
  Rng rng(7);
  const auto g = gen::random_with_average_degree(1500, 12, rng);
  StationaryWorkload w(g);
  ControllerParams p;
  p.rho = 0.20;
  HybridController c(p);
  RunLoopConfig cfg;
  cfg.max_steps = 300;
  const auto trace = run_controlled(c, w, cfg, rng);
  EXPECT_NEAR(trace.mean_conflict_ratio(100), 0.20, 0.05);
}

TEST(Sec41, RefiningWorkloadRampsAndControllerFollows) {
  // The Lonestar DMR profile: parallelism explodes within tens of steps.
  // A good controller must grow m by an order of magnitude in response.
  RefiningParams rp;
  rp.seed_nodes = 8;
  rp.children = 3;
  rp.attach_neighbors = 2;
  rp.total_budget = 30000;
  Rng rng(8);
  RefiningWorkload w(rp, rng);
  ControllerParams p;
  p.rho = 0.25;
  p.m_max = 4096;
  HybridController c(p);
  RunLoopConfig cfg;
  cfg.max_steps = 120;
  const auto trace = run_controlled(c, w, cfg, rng);
  std::uint32_t max_m = 0;
  for (const auto& s : trace.steps) max_m = std::max(max_m, s.m);
  EXPECT_GE(max_m, 20u * p.m0);
}

TEST(Sec41, PhaseShiftReconvergence) {
  // Dense stage (tiny μ) then sparse stage (huge μ): after the shift the
  // controller must raise m well above the dense-stage level.
  Rng rng(9);
  std::vector<PhaseShiftWorkload::Stage> stages;
  stages.push_back({60, gen::union_of_cliques(300, 59)});   // 5 cliques of 60
  stages.push_back({120, CsrGraph::from_edges(600, {})});   // no conflicts
  PhaseShiftWorkload w(std::move(stages));
  ControllerParams p;
  p.rho = 0.25;
  HybridController c(p);
  RunLoopConfig cfg;
  cfg.max_steps = 180;
  const auto trace = run_controlled(c, w, cfg, rng);

  std::uint32_t m_dense = 0;
  for (std::size_t i = 40; i < 60; ++i) {
    m_dense = std::max(m_dense, trace.steps[i].m);
  }
  std::uint32_t m_sparse_end = trace.steps.back().m;
  EXPECT_GT(m_sparse_end, 4 * std::max(1u, m_dense));
}

TEST(Profile, RefiningWorkloadShowsLonestarStyleRamp) {
  RefiningParams rp;
  rp.seed_nodes = 4;
  rp.children = 3;
  rp.total_budget = 20000;
  Rng rng(10);
  RefiningWorkload w(rp, rng);
  const auto profile = parallelism_profile(w, 200, rng);
  const auto peak = profile_peak(profile);
  EXPECT_GT(peak, 100u);
  // From ~nothing to half the peak within a few tens of steps.
  EXPECT_LE(steps_to_fraction_of_peak(profile, 0.5), 60u);
}

TEST(Profile, ConsumingWorkloadProfileSumsToAllTasks) {
  Rng rng(11);
  ConsumingWorkload w(gen::gnm_random(200, 800, rng));
  const auto profile = parallelism_profile(w, 10000, rng);
  std::uint64_t total = 0;
  for (const auto& p : profile) total += p.executed;
  EXPECT_EQ(total, 200u);
  EXPECT_TRUE(w.done());
}

TEST(WarmStart, TheoryBackedInitialAllocationIsSafeEverywhere) {
  // Starting at the Cor. 3 warm start keeps the observed ratio under rho
  // on the worst-case graph from the very first rounds.
  const std::uint32_t n = 1020, d = 16;  // 60 cliques of 17
  const double rho = 0.25;
  const auto m0 = theory::warm_start_m(n, d, rho);
  Rng rng(12);
  StationaryWorkload w(gen::union_of_cliques(n, d));
  const auto stats = estimate_r_at(w.graph(), m0, 2000, rng);
  EXPECT_LE(stats.mean(), rho + 0.02);
}

}  // namespace
}  // namespace optipar
