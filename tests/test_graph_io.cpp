#include "graph/graph_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "graph/generators.hpp"

namespace optipar {
namespace {

TEST(GraphIo, StreamRoundTrip) {
  Rng rng(1);
  const auto g = gen::gnm_random(40, 90, rng);
  std::stringstream ss;
  io::write_edge_list(g, ss);
  const auto back = io::read_edge_list(ss);
  EXPECT_EQ(back.num_nodes(), g.num_nodes());
  EXPECT_EQ(back.num_edges(), g.num_edges());
  EXPECT_EQ(back.edges(), g.edges());
}

TEST(GraphIo, FileRoundTrip) {
  Rng rng(2);
  const auto g = gen::union_of_cliques(12, 3);
  const std::string path = "/tmp/optipar_test_graph.txt";
  io::write_edge_list(g, path);
  const auto back = io::read_edge_list(path);
  EXPECT_EQ(back.edges(), g.edges());
  std::remove(path.c_str());
}

TEST(GraphIo, CommentsAndBlanksAreSkipped) {
  std::stringstream ss("# a comment\n\np 3 2\nc dimacs comment\n0 1\n1 2\n");
  const auto g = io::read_edge_list(ss);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(GraphIo, MissingHeaderThrows) {
  std::stringstream ss("0 1\n");
  EXPECT_THROW((void)io::read_edge_list(ss), std::runtime_error);
}

TEST(GraphIo, EmptyInputThrows) {
  std::stringstream ss("");
  EXPECT_THROW((void)io::read_edge_list(ss), std::runtime_error);
}

TEST(GraphIo, MalformedEdgeThrows) {
  std::stringstream ss("p 3 1\n0 x\n");
  EXPECT_THROW((void)io::read_edge_list(ss), std::runtime_error);
}

TEST(GraphIo, OutOfRangeEdgeThrows) {
  std::stringstream ss("p 3 1\n0 9\n");
  try {
    (void)io::read_edge_list(ss);
    FAIL() << "expected GraphIoError";
  } catch (const io::GraphIoError& e) {
    EXPECT_EQ(e.kind(), io::GraphIoError::Kind::kOutOfRange);
    EXPECT_EQ(e.line(), 2u);
  }
}

TEST(GraphIo, MissingFileThrows) {
  EXPECT_THROW((void)io::read_edge_list(std::string("/no/such/file.graph")),
               std::runtime_error);
}

TEST(GraphIo, IsolatedNodesSurviveRoundTrip) {
  const auto g = CsrGraph::from_edges(10, {{0, 1}});
  std::stringstream ss;
  io::write_edge_list(g, ss);
  const auto back = io::read_edge_list(ss);
  EXPECT_EQ(back.num_nodes(), 10u);
  EXPECT_EQ(back.num_edges(), 1u);
}

}  // namespace
}  // namespace optipar
