// Multi-lane software-pipelining stress (DESIGN.md §12) — the TSan
// target for the overlapped draw. The prefetch lane reads the live lock
// table (owner() acquire loads) while the other lanes run the commit
// epilogue (release stores on lock release), so any missing fence or
// buffer-publication bug in the pipeline is a data race TSan can see.
// Functionally the runs must keep the exactly-once oracle regardless of
// how stale the pre-check verdicts are.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include "rt/spec_executor.hpp"
#include "support/thread_pool.hpp"

namespace optipar {
namespace {

constexpr std::uint32_t kCells = 64;
constexpr std::uint32_t kTasks = 400;

struct Effect {
  std::uint32_t first;
  std::uint32_t count;
  std::int64_t delta;
};

std::vector<Effect> make_effects(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Effect> effects(kTasks);
  for (auto& e : effects) {
    e.first = static_cast<std::uint32_t>(rng.below(kCells));
    e.count = 1 + static_cast<std::uint32_t>(rng.below(4));
    e.delta = rng.between(-5, 5);
  }
  return effects;
}

TEST(PipelineStress, OverlappedDrawKeepsOracleAcrossManyRounds) {
  const auto effects = make_effects(31);
  std::vector<std::int64_t> oracle(kCells, 0);
  for (const auto& e : effects) {
    for (std::uint32_t i = 0; i < e.count; ++i) {
      oracle[(e.first + i) % kCells] += e.delta;
    }
  }
  for (const std::uint32_t m : {4u, 16u, 64u}) {
    std::vector<std::int64_t> cells(kCells, 0);
    ThreadPool pool(4);
    SpeculativeExecutor ex(
        pool, kCells,
        [&](TaskId t, IterationContext& ctx) {
          const Effect& e = effects[t];
          for (std::uint32_t i = 0; i < e.count; ++i) {
            const std::uint32_t cell = (e.first + i) % kCells;
            ctx.acquire(cell);
            cells[cell] += e.delta;
            ctx.on_abort([&cells, cell, d = e.delta] { cells[cell] -= d; });
          }
        },
        m * 131 + 7);
    ex.set_pipeline({.max_lanes = 4, .overlapped_draw = true});
    std::vector<TaskId> tasks(kTasks);
    std::iota(tasks.begin(), tasks.end(), TaskId{0});
    ex.push_initial(tasks);
    int rounds = 0;
    while (!ex.done() && rounds++ < 100000) (void)ex.run_round(m);
    ASSERT_TRUE(ex.done()) << "m=" << m;
    EXPECT_EQ(ex.totals().committed, kTasks) << "m=" << m;
    EXPECT_TRUE(ex.locks().all_free());
    EXPECT_EQ(cells, oracle) << "m=" << m;
    const PipelineStats& ps = ex.pipeline_stats();
    EXPECT_GT(ps.overlapped_rounds, 0u) << "m=" << m;
    EXPECT_LE(ps.precheck_flagged, ps.prefetched_tasks);
    EXPECT_GE(ps.occupancy(), 0.0);
    EXPECT_LE(ps.occupancy(), 1.0);
  }
}

TEST(PipelineStress, ConcurrentPrecheckReadsTheLiveLockTable) {
  // The custom pre-check probes the whole table, maximizing concurrent
  // owner() loads against the epilogue's release stores.
  const auto effects = make_effects(77);
  std::vector<std::int64_t> cells(kCells, 0);
  ThreadPool pool(4);
  SpeculativeExecutor ex(
      pool, kCells,
      [&](TaskId t, IterationContext& ctx) {
        const Effect& e = effects[t];
        for (std::uint32_t i = 0; i < e.count; ++i) {
          const std::uint32_t cell = (e.first + i) % kCells;
          ctx.acquire(cell);
          cells[cell] += e.delta;
          ctx.on_abort([&cells, cell, d = e.delta] { cells[cell] -= d; });
        }
      },
      5);
  ex.set_pipeline({.max_lanes = 4, .overlapped_draw = true});
  std::atomic<std::uint64_t> probes{0};
  ex.set_precheck_function(
      [&effects, &probes](TaskId t, const LockManager& locks) {
        probes.fetch_add(1, std::memory_order_relaxed);
        const Effect& e = effects[t];
        for (std::uint32_t i = 0; i < e.count; ++i) {
          if (locks.owner((e.first + i) % kCells) != LockManager::kFree) {
            return false;
          }
        }
        return true;
      });
  std::vector<TaskId> tasks(kTasks);
  std::iota(tasks.begin(), tasks.end(), TaskId{0});
  ex.push_initial(tasks);
  int rounds = 0;
  while (!ex.done() && rounds++ < 100000) (void)ex.run_round(32);
  ASSERT_TRUE(ex.done());
  EXPECT_EQ(ex.totals().committed, kTasks);
  EXPECT_GT(probes.load(), 0u);
  EXPECT_EQ(probes.load(), ex.pipeline_stats().prefetched_tasks);
}

TEST(PipelineStress, DisablingOverlapStillRunsMultiLane) {
  std::vector<std::int64_t> cells(kCells, 0);
  const auto effects = make_effects(13);
  ThreadPool pool(4);
  SpeculativeExecutor ex(
      pool, kCells,
      [&](TaskId t, IterationContext& ctx) {
        const Effect& e = effects[t];
        for (std::uint32_t i = 0; i < e.count; ++i) {
          const std::uint32_t cell = (e.first + i) % kCells;
          ctx.acquire(cell);
          cells[cell] += e.delta;
          ctx.on_abort([&cells, cell, d = e.delta] { cells[cell] -= d; });
        }
      },
      99);
  ex.set_pipeline({.max_lanes = 4, .overlapped_draw = false});
  std::vector<TaskId> tasks(kTasks);
  std::iota(tasks.begin(), tasks.end(), TaskId{0});
  ex.push_initial(tasks);
  int rounds = 0;
  while (!ex.done() && rounds++ < 100000) (void)ex.run_round(16);
  ASSERT_TRUE(ex.done());
  EXPECT_EQ(ex.totals().committed, kTasks);
  EXPECT_EQ(ex.pipeline_stats().overlapped_rounds, 0u);
  EXPECT_EQ(ex.pipeline_stats().prefetched_tasks, 0u);
}

}  // namespace
}  // namespace optipar
