// Failure-hardening tests (DESIGN.md §8): deterministic fault injection,
// retry/backoff and dead-letter quarantine, two-phase rollback, pool-lane
// salvage with graceful serial degradation, and the livelock watchdog. The
// master invariant is the same as the fault-free chaos suite — speculation
// leaves no trace — now required to hold while faults fire on the
// execute/commit/rollback paths.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "control/hybrid.hpp"
#include "rt/adaptive_executor.hpp"
#include "rt/fault_injector.hpp"
#include "rt/spec_executor.hpp"
#include "rt/undo_log.hpp"
#include "support/failure_policy.hpp"
#include "support/rng.hpp"
#include "support/telemetry/telemetry.hpp"
#include "support/thread_pool.hpp"

namespace optipar {
namespace {

// ---------------------------------------------------------------------------
// FaultInjector: the PRF decision layer.
// ---------------------------------------------------------------------------

TEST(FaultInjector, DecisionsAreSeedDeterministicAndStateless) {
  FaultInjector a(42);
  FaultInjector b(42);
  a.set_all_rates(0.3);
  b.set_all_rates(0.3);
  for (std::uint64_t t = 0; t < 500; ++t) {
    for (std::uint64_t attempt = 1; attempt <= 3; ++attempt) {
      EXPECT_EQ(a.should_fire(FaultSite::kOperatorThrow, t, attempt),
                b.should_fire(FaultSite::kOperatorThrow, t, attempt));
    }
  }
  // should_fire is pure: asking twice gives the same answer and does not
  // advance any stream.
  const bool first = a.should_fire(FaultSite::kPoolLane, 7, 1);
  EXPECT_EQ(first, a.should_fire(FaultSite::kPoolLane, 7, 1));
}

TEST(FaultInjector, RateEndpointsAndCounters) {
  FaultInjector inj(7);
  EXPECT_EQ(inj.rate(FaultSite::kOperatorThrow), 0.0);  // default: off
  for (std::uint64_t t = 0; t < 200; ++t) {
    EXPECT_FALSE(inj.should_fire(FaultSite::kOperatorThrow, t, 1));
  }
  inj.set_rate(FaultSite::kOperatorThrow, 1.0);
  for (std::uint64_t t = 0; t < 200; ++t) {
    EXPECT_TRUE(inj.should_fire(FaultSite::kOperatorThrow, t, 1));
  }
  EXPECT_EQ(inj.total_fired(), 0u);  // should_fire never counts
  EXPECT_THROW(inj.maybe_throw(FaultSite::kOperatorThrow, 0, 1),
               InjectedFault);
  EXPECT_EQ(inj.fired(FaultSite::kOperatorThrow), 1u);
  EXPECT_EQ(inj.total_fired(), 1u);
  // An observed rate roughly tracks the configured rate.
  inj.set_rate(FaultSite::kOperatorDelay, 0.25);
  int fired = 0;
  for (std::uint64_t t = 0; t < 4000; ++t) {
    fired += inj.should_fire(FaultSite::kOperatorDelay, t, 1) ? 1 : 0;
  }
  EXPECT_GT(fired, 4000 * 0.15);
  EXPECT_LT(fired, 4000 * 0.35);
}

TEST(FaultInjector, SitesAndSeedsAreIndependent) {
  FaultInjector a(1);
  FaultInjector b(2);
  a.set_all_rates(0.5);
  b.set_all_rates(0.5);
  int site_diff = 0;
  int seed_diff = 0;
  for (std::uint64_t t = 0; t < 300; ++t) {
    if (a.should_fire(FaultSite::kOperatorThrow, t, 1) !=
        a.should_fire(FaultSite::kRollbackInverse, t, 1)) {
      ++site_diff;
    }
    if (a.should_fire(FaultSite::kOperatorThrow, t, 1) !=
        b.should_fire(FaultSite::kOperatorThrow, t, 1)) {
      ++seed_diff;
    }
  }
  EXPECT_GT(site_diff, 0);  // sites do not alias
  EXPECT_GT(seed_diff, 0);  // seeds do not alias
}

// ---------------------------------------------------------------------------
// UndoLog: two-phase exception-safe rollback.
// ---------------------------------------------------------------------------

TEST(UndoLogHardening, TwoPhaseRollbackRunsEveryInverse) {
  UndoLog log;
  std::vector<int> ran;
  log.record([&] { ran.push_back(0); });
  log.record([&] {
    ran.push_back(1);
    throw std::runtime_error("inverse one");
  });
  log.record([&] { ran.push_back(2); });
  log.record([&] {
    ran.push_back(3);
    throw 42;  // non-std exception must also be survived
  });
  try {
    log.rollback();
    FAIL() << "expected RollbackError";
  } catch (const RollbackError& e) {
    ASSERT_EQ(e.errors().size(), 2u);
    EXPECT_EQ(e.errors()[0].index, 3u);  // unwind order: newest first
    EXPECT_EQ(e.errors()[0].what, "non-std exception");
    EXPECT_EQ(e.errors()[1].index, 1u);
    EXPECT_EQ(e.errors()[1].what, "inverse one");
    EXPECT_NE(std::string(e.what()).find("2 failed inverse(s)"),
              std::string::npos);
  }
  // Phase 1 completed: every inverse ran, newest-first, despite the throws.
  EXPECT_EQ(ran, (std::vector<int>{3, 2, 1, 0}));
  EXPECT_TRUE(log.empty());  // the log is spent either way
}

TEST(UndoLogHardening, RecycledSlotsRecordAndRollBackCleanly) {
  UndoLog log;
  log.reserve(8);
  int value = 0;
  for (int round = 0; round < 3; ++round) {
    log.record([&] { value -= 1; });
    log.record([&] { value -= 10; });
    value += 11;
    if (round < 2) {
      log.discard();  // commit: keep the mutation, recycle the slots
    } else {
      log.rollback();  // abort: undo exactly this round's actions
    }
  }
  EXPECT_EQ(value, 22);  // two commits survived, the third rolled back
  EXPECT_TRUE(log.empty());
}

// ---------------------------------------------------------------------------
// Executor under injected faults: the no-trace invariant must survive.
// ---------------------------------------------------------------------------

struct Effect {
  std::uint32_t first = 0;
  std::uint32_t count = 1;
  std::int64_t delta = 1;
};

std::vector<Effect> make_effects(std::uint64_t seed, std::uint32_t tasks,
                                 std::uint32_t cells) {
  Rng rng(seed);
  std::vector<Effect> effects(tasks);
  for (auto& e : effects) {
    e.first = static_cast<std::uint32_t>(rng.below(cells));
    e.count = 1 + static_cast<std::uint32_t>(rng.below(4));
    e.delta = rng.between(-5, 5);
  }
  return effects;
}

TEST(ChaosHardened, OracleHoldsUnderInjectedFaults) {
  constexpr std::uint32_t kCells = 32;
  constexpr std::uint32_t kTasks = 200;
  const auto effects = make_effects(11, kTasks, kCells);
  std::vector<std::int64_t> oracle(kCells, 0);
  for (const auto& e : effects) {
    for (std::uint32_t i = 0; i < e.count; ++i) {
      oracle[(e.first + i) % kCells] += e.delta;
    }
  }

  for (const std::size_t threads : {1u, 4u}) {
    std::vector<std::int64_t> cells(kCells, 0);
    ThreadPool pool(threads);
    SpeculativeExecutor ex(
        pool, kCells,
        [&](TaskId t, IterationContext& ctx) {
          const Effect& e = effects[t];
          for (std::uint32_t i = 0; i < e.count; ++i) {
            const std::uint32_t cell = (e.first + i) % kCells;
            ctx.acquire(cell);
            cells[cell] += e.delta;
            ctx.on_abort([&cells, cell, d = e.delta] { cells[cell] -= d; });
          }
        },
        99);
    // Exercise true multi-lane rounds even on a single-core host.
    ex.set_pipeline({.max_lanes = threads});
    FaultInjector inj(1234);
    inj.set_rate(FaultSite::kOperatorThrow, 0.25);
    inj.set_rate(FaultSite::kOperatorDelay, 0.10);
    inj.set_rate(FaultSite::kRollbackInverse, 0.10);
    inj.set_rate(FaultSite::kLockAcquire, 0.10);
    ex.set_fault_injector(&inj);
    // Retries are re-keyed by attempt, so a generous budget drives the
    // per-task quarantine probability to ~0.25^65 — effectively zero.
    FailurePolicy fp;
    fp.max_retries = 64;
    fp.backoff_base_rounds = 1;
    fp.backoff_cap_rounds = 4;
    ex.set_failure_policy(fp);

    std::vector<TaskId> tasks(kTasks);
    std::iota(tasks.begin(), tasks.end(), TaskId{0});
    ex.push_initial(tasks);
    int rounds = 0;
    while (!ex.done() && rounds++ < 100000) (void)ex.run_round(16);
    ASSERT_TRUE(ex.done());
    EXPECT_EQ(ex.totals().committed, kTasks);
    EXPECT_TRUE(ex.dead_letters().empty());
    EXPECT_GT(ex.totals().retried, 0u);  // faults actually fired
    EXPECT_GT(inj.total_fired(), 0u);
    EXPECT_TRUE(ex.locks().all_free());
    EXPECT_EQ(ex.locks().owned_count(), 0u);
    EXPECT_EQ(cells, oracle)
        << "threads=" << threads << ": injected faults left a trace";
  }
}

TEST(ChaosHardened, SameFaultSeedReplaysByteIdentically) {
  // ISSUE contract: two chaos runs with the same fault seed produce
  // identical traces. Single lane removes scheduling nondeterminism; the
  // injector's PRF removes injection nondeterminism.
  constexpr std::uint32_t kCells = 24;
  constexpr std::uint32_t kTasks = 120;
  const auto effects = make_effects(5, kTasks, kCells);

  struct RunResult {
    std::vector<std::vector<std::uint32_t>> per_round;
    std::vector<SpeculativeExecutor::DeadLetter> dead;
  };
  const auto run_once = [&]() {
    RunResult out;
    std::vector<std::int64_t> cells(kCells, 0);
    ThreadPool pool(1);
    SpeculativeExecutor ex(
        pool, kCells,
        [&](TaskId t, IterationContext& ctx) {
          const Effect& e = effects[t];
          for (std::uint32_t i = 0; i < e.count; ++i) {
            const std::uint32_t cell = (e.first + i) % kCells;
            ctx.acquire(cell);
            cells[cell] += e.delta;
            ctx.on_abort([&cells, cell, d = e.delta] { cells[cell] -= d; });
          }
        },
        77);
    FaultInjector inj(31337);
    inj.set_rate(FaultSite::kOperatorThrow, 0.5);
    ex.set_fault_injector(&inj);
    FailurePolicy fp;
    fp.max_retries = 2;  // low budget: quarantines must occur and replay
    fp.backoff_cap_rounds = 3;
    ex.set_failure_policy(fp);
    std::vector<TaskId> tasks(kTasks);
    std::iota(tasks.begin(), tasks.end(), TaskId{0});
    ex.push_initial(tasks);
    int rounds = 0;
    while (!ex.done() && rounds++ < 100000) {
      const RoundStats s = ex.run_round(8);
      out.per_round.push_back(
          {s.launched, s.committed, s.aborted, s.retried, s.quarantined,
           s.injected});
    }
    out.dead = ex.dead_letters();
    return out;
  };

  const RunResult a = run_once();
  const RunResult b = run_once();
  EXPECT_EQ(a.per_round, b.per_round);
  ASSERT_EQ(a.dead.size(), b.dead.size());
  EXPECT_FALSE(a.dead.empty());  // the low retry budget did quarantine
  for (std::size_t i = 0; i < a.dead.size(); ++i) {
    EXPECT_EQ(a.dead[i].task, b.dead[i].task);
    EXPECT_EQ(a.dead[i].attempts, b.dead[i].attempts);
    EXPECT_EQ(a.dead[i].error, b.dead[i].error);
  }
}

TEST(ChaosHardened, ZeroRateInjectorIsByteTransparent) {
  // An attached injector with rate 0 (and an installed policy) must not
  // perturb the schedule: same per-round stats as a bare executor.
  constexpr std::uint32_t kCells = 24;
  constexpr std::uint32_t kTasks = 100;
  const auto effects = make_effects(3, kTasks, kCells);
  const auto run_once = [&](bool hardened) {
    std::vector<std::vector<std::uint32_t>> per_round;
    std::vector<std::int64_t> cells(kCells, 0);
    ThreadPool pool(1);
    SpeculativeExecutor ex(
        pool, kCells,
        [&](TaskId t, IterationContext& ctx) {
          const Effect& e = effects[t];
          for (std::uint32_t i = 0; i < e.count; ++i) {
            const std::uint32_t cell = (e.first + i) % kCells;
            ctx.acquire(cell);
            cells[cell] += e.delta;
            ctx.on_abort([&cells, cell, d = e.delta] { cells[cell] -= d; });
          }
        },
        123);
    FaultInjector inj(9);  // all rates default to 0
    if (hardened) {
      ex.set_fault_injector(&inj);
      ex.set_failure_policy(FailurePolicy{});
    }
    std::vector<TaskId> tasks(kTasks);
    std::iota(tasks.begin(), tasks.end(), TaskId{0});
    ex.push_initial(tasks);
    int rounds = 0;
    while (!ex.done() && rounds++ < 100000) {
      const RoundStats s = ex.run_round(8);
      per_round.push_back({s.launched, s.committed, s.aborted, s.retried,
                           s.quarantined, s.injected});
    }
    return per_round;
  };
  EXPECT_EQ(run_once(false), run_once(true));
}

// ---------------------------------------------------------------------------
// Retry, quarantine, and the legacy rethrow contract.
// ---------------------------------------------------------------------------

TEST(FailureHandling, TransientFaultRetriesThenCommits) {
  ThreadPool pool(1);
  std::atomic<int> failures_left{3};
  std::atomic<int> executions{0};
  SpeculativeExecutor ex(
      pool, 1,
      [&](TaskId, IterationContext&) {
        executions.fetch_add(1);
        if (failures_left.fetch_sub(1) > 0) {
          throw std::runtime_error("transient");
        }
      },
      1);
  FailurePolicy fp;
  fp.max_retries = 5;
  fp.backoff_base_rounds = 2;
  fp.backoff_cap_rounds = 8;
  ex.set_failure_policy(fp);
  std::vector<TaskId> tasks{0};
  ex.push_initial(tasks);
  bool saw_deferred = false;
  int rounds = 0;
  while (!ex.done() && rounds++ < 1000) {
    (void)ex.run_round(4);
    saw_deferred = saw_deferred || ex.deferred_count() > 0;
  }
  ASSERT_TRUE(ex.done());
  EXPECT_EQ(executions.load(), 4);  // 3 failures + the committing attempt
  EXPECT_EQ(ex.totals().committed, 1u);
  EXPECT_EQ(ex.totals().retried, 3u);
  EXPECT_TRUE(saw_deferred);  // backoff actually parked the task
  EXPECT_TRUE(ex.dead_letters().empty());
  EXPECT_GT(rounds, 4);  // backoff spans rounds; it did not retry inline
}

TEST(FailureHandling, PermanentFaultIsQuarantinedWithContext) {
  ThreadPool pool(2);
  SpeculativeExecutor ex(
      pool, 4,
      [&](TaskId t, IterationContext& ctx) {
        ctx.acquire(static_cast<std::uint32_t>(t));
        if (t == 2) throw std::runtime_error("task two is poisoned");
      },
      1);
  FailurePolicy fp;
  fp.max_retries = 3;
  fp.backoff_base_rounds = 1;
  fp.backoff_cap_rounds = 2;
  ex.set_failure_policy(fp);
  std::vector<TaskId> tasks{0, 1, 2, 3};
  ex.push_initial(tasks);
  RoundStats last;
  int rounds = 0;
  while (!ex.done() && rounds++ < 1000) {
    const RoundStats s = ex.run_round(4);
    if (s.first_error) last = s;
  }
  ASSERT_TRUE(ex.done());
  EXPECT_EQ(ex.totals().committed, 3u);
  EXPECT_EQ(ex.totals().quarantined, 1u);
  ASSERT_EQ(ex.dead_letters().size(), 1u);
  const auto& dl = ex.dead_letters()[0];
  EXPECT_EQ(dl.task, 2u);
  EXPECT_EQ(dl.attempts, 4u);  // initial run + max_retries
  EXPECT_EQ(dl.error, "task two is poisoned");
  // The swallowed exception is still observable on the round stats.
  ASSERT_TRUE(last.first_error);
  EXPECT_THROW(std::rethrow_exception(last.first_error),
               std::runtime_error);
  EXPECT_TRUE(ex.locks().all_free());
}

TEST(FailureHandling, RollbackInverseFaultIsAbsorbedTwoPhase) {
  // Every attempt fails AND its rollback throws an injected inverse fault;
  // the real inverse below it must still run (state restored), and the
  // task must quarantine rather than wedge.
  ThreadPool pool(1);
  std::int64_t cell = 0;
  SpeculativeExecutor ex(
      pool, 1,
      [&](TaskId, IterationContext& ctx) {
        ctx.acquire(0);
        cell += 7;
        ctx.on_abort([&] { cell -= 7; });
        throw std::runtime_error("always fails");
      },
      1);
  FaultInjector inj(55);
  inj.set_rate(FaultSite::kRollbackInverse, 1.0);
  ex.set_fault_injector(&inj);
  FailurePolicy fp;
  fp.max_retries = 1;
  ex.set_failure_policy(fp);
  std::vector<TaskId> tasks{0};
  ex.push_initial(tasks);
  int rounds = 0;
  while (!ex.done() && rounds++ < 1000) (void)ex.run_round(1);
  ASSERT_TRUE(ex.done());
  EXPECT_EQ(cell, 0) << "a throwing injected inverse stranded a real one";
  EXPECT_EQ(ex.totals().quarantined, 1u);
  EXPECT_GT(inj.fired(FaultSite::kRollbackInverse), 0u);
  EXPECT_TRUE(ex.locks().all_free());
}

TEST(FailureHandling, LegacyRethrowWithoutPolicyIsPreserved) {
  // Mirrors the long-standing contract test: without a FailurePolicy (or
  // with rethrow_operator_errors) run_round surfaces the first error.
  for (const bool explicit_rethrow : {false, true}) {
    ThreadPool pool(1);
    SpeculativeExecutor ex(
        pool, 1,
        [](TaskId, IterationContext&) -> void {
          throw std::runtime_error("app bug");
        },
        1);
    if (explicit_rethrow) {
      FailurePolicy fp;
      fp.rethrow_operator_errors = true;
      ex.set_failure_policy(fp);
    }
    std::vector<TaskId> tasks{0};
    ex.push_initial(tasks);
    EXPECT_THROW((void)ex.run_round(1), std::runtime_error);
  }
}

// ---------------------------------------------------------------------------
// Pool-lane death: salvage, then graceful serial degradation.
// ---------------------------------------------------------------------------

TEST(FailureHandling, PoolLaneDeathDegradesToSerialAndCompletes) {
  constexpr std::uint32_t kCells = 16;
  constexpr std::uint32_t kTasks = 64;
  std::vector<std::int64_t> cells(kCells, 0);
  ThreadPool pool(4);
  SpeculativeExecutor ex(
      pool, kCells,
      [&](TaskId t, IterationContext& ctx) {
        const std::uint32_t cell = static_cast<std::uint32_t>(t % kCells);
        ctx.acquire(cell);
        cells[cell] += 1;
        ctx.on_abort([&cells, cell] { cells[cell] -= 1; });
      },
      9);
  // Lane deaths need parallel lanes: lift the core-count cap.
  ex.set_pipeline({.max_lanes = 4});
  FaultInjector inj(777);
  inj.set_rate(FaultSite::kPoolLane, 1.0);  // every parallel lane dies
  ex.set_fault_injector(&inj);
  FailurePolicy fp;
  fp.max_pool_failures = 2;
  ex.set_failure_policy(fp);
  std::vector<TaskId> tasks(kTasks);
  std::iota(tasks.begin(), tasks.end(), TaskId{0});
  ex.push_initial(tasks);
  int rounds = 0;
  while (!ex.done() && rounds++ < 10000) (void)ex.run_round(16);
  ASSERT_TRUE(ex.done());
  EXPECT_TRUE(ex.serial_degraded());
  EXPECT_EQ(ex.pool_failures(), 2u);  // degraded exactly at the budget
  EXPECT_EQ(ex.totals().committed, kTasks);  // no task lost in salvage
  EXPECT_TRUE(ex.locks().all_free());
  for (const auto v : cells) EXPECT_EQ(v, 4);  // 64 tasks over 16 cells
}

// ---------------------------------------------------------------------------
// Livelock watchdog through run_adaptive.
// ---------------------------------------------------------------------------

/// Wraps HybridController and publishes the allocation it last proposed, so
/// the storm operator below can key its behavior on the APPLIED m without
/// any timing-dependent peer detection.
class StormController final : public Controller {
 public:
  StormController(const ControllerParams& params,
                  std::atomic<std::uint32_t>& applied)
      : inner_(params), applied_(applied) {
    applied_.store(inner_.initial_m());
  }
  [[nodiscard]] std::uint32_t initial_m() const override {
    return inner_.initial_m();
  }
  std::uint32_t observe(const RoundStats& round) override {
    const std::uint32_t m = inner_.observe(round);
    applied_.store(m);
    return m;
  }
  void reset() override { inner_.reset(); }
  void clamp_max(std::uint32_t m_cap) override {
    inner_.clamp_max(m_cap);
    applied_.store(std::min(applied_.load(), m_cap));
  }
  [[nodiscard]] std::string name() const override { return "storm"; }
  [[nodiscard]] const HybridController& inner() const noexcept {
    return inner_;
  }

 private:
  HybridController inner_;
  std::atomic<std::uint32_t>& applied_;
};

TEST(Watchdog, AbortStormDegradesToSerialAndCompletes) {
  // A total abort storm in the spirit of the paper's K_d^n worst case:
  // every task refuses to commit while the round allocation exceeds one,
  // so NO m >= 2 makes progress and the controller's own m_min >= 2 floor
  // keeps it from ever proposing serial. Only the watchdog's forced m = 1
  // can finish the workload.
  constexpr std::uint32_t kTasks = 24;
  ThreadPool pool(4);
  std::atomic<std::uint32_t> applied_m{0};
  SpeculativeExecutor ex(
      pool, kTasks,
      [&](TaskId t, IterationContext& ctx) {
        ctx.acquire(static_cast<std::uint32_t>(t));
        if (applied_m.load(std::memory_order_acquire) > 1) {
          throw AbortIteration{};
        }
      },
      5);
  std::vector<TaskId> tasks(kTasks);
  std::iota(tasks.begin(), tasks.end(), TaskId{0});
  ex.push_initial(tasks);

  ControllerParams params;
  params.m0 = 8;
  params.m_min = 2;  // the controller alone can never reach serial
  params.m_max = 16;
  StormController controller(params, applied_m);
  AdaptiveRunConfig config;
  config.watchdog_rounds = 8;
  config.serial_grace = 50;
  const Trace trace = run_adaptive(ex, controller, config);

  ASSERT_TRUE(ex.done());
  EXPECT_TRUE(trace.watchdog_fired());
  EXPECT_EQ(ex.totals().committed, kTasks);
  // Before degradation: nothing committed. After: strictly serial rounds.
  for (const auto& step : trace.steps) {
    if (step.step < trace.degraded_at_step) {
      EXPECT_EQ(step.committed, 0u);
    } else if (step.step > trace.degraded_at_step) {
      EXPECT_EQ(step.m, 1u);
      EXPECT_TRUE(step.degraded);
    }
  }
  // The controller was clamped, not bypassed.
  EXPECT_EQ(controller.inner().params().m_max, 1u);
}

TEST(Watchdog, HopelessWorkloadRaisesLivelockErrorNotSpin) {
  // Every task always aborts, even serially: after degradation plus the
  // serial grace period the loop must surface a structured diagnostic
  // instead of burning max_rounds.
  ThreadPool pool(2);
  SpeculativeExecutor ex(
      pool, 4,
      [](TaskId, IterationContext&) -> void { throw AbortIteration{}; }, 3);
  std::vector<TaskId> tasks{0, 1, 2, 3};
  ex.push_initial(tasks);
  ControllerParams params;
  params.m0 = 4;
  HybridController controller(params);
  AdaptiveRunConfig config;
  config.watchdog_rounds = 5;
  config.serial_grace = 4;
  try {
    (void)run_adaptive(ex, controller, config);
    FAIL() << "expected LivelockError";
  } catch (const LivelockError& e) {
    EXPECT_EQ(e.stalled_rounds(), 4u);
    EXPECT_EQ(e.pending(), 4u);  // nothing was lost, nothing retired
    EXPECT_EQ(e.quarantined(), 0u);
    EXPECT_NE(std::string(e.what()).find("zero-progress"),
              std::string::npos);
  }
}

TEST(Watchdog, QuarantineCountsAsProgress) {
  // A workload whose failures are being quarantined is draining, not
  // livelocked: the watchdog must not fire.
  ThreadPool pool(2);
  SpeculativeExecutor ex(
      pool, 8,
      [](TaskId, IterationContext&) -> void {
        throw std::runtime_error("always fails");
      },
      3);
  FailurePolicy fp;
  fp.max_retries = 0;  // quarantine on first failure
  ex.set_failure_policy(fp);
  std::vector<TaskId> tasks(8);
  std::iota(tasks.begin(), tasks.end(), TaskId{0});
  ex.push_initial(tasks);
  ControllerParams params;
  params.m0 = 4;
  HybridController controller(params);
  AdaptiveRunConfig config;
  config.watchdog_rounds = 3;
  const Trace trace = run_adaptive(ex, controller, config);
  ASSERT_TRUE(ex.done());
  EXPECT_FALSE(trace.watchdog_fired());
  EXPECT_EQ(trace.total_quarantined(), 8u);
  EXPECT_EQ(ex.dead_letters().size(), 8u);
}

// ---------------------------------------------------------------------------
// Telemetry surfacing (DESIGN.md §10): absorbed failures must be visible.
// ---------------------------------------------------------------------------

TEST(TelemetrySurfacing, FirstErrorAndQuarantinesReachTraceAndEvents) {
  // One poisoned task among friends: the failure policy absorbs the throws
  // (retry, then quarantine), so nothing surfaces as an exception — the
  // trace's per-round `error` field, the kRetry/kQuarantine events, and the
  // lane quarantine counters are the ONLY places the failure is visible.
  ThreadPool pool(2);
  SpeculativeExecutor ex(
      pool, 8,
      [&](TaskId t, IterationContext& ctx) {
        ctx.acquire(static_cast<std::uint32_t>(t));
        if (t == 5) throw std::runtime_error("task five is poisoned");
      },
      21);
  FailurePolicy fp;
  fp.max_retries = 2;
  fp.backoff_base_rounds = 1;
  fp.backoff_cap_rounds = 2;
  ex.set_failure_policy(fp);
  telemetry::RuntimeTelemetry tel;
  ex.set_telemetry(&tel);

  std::vector<TaskId> tasks(8);
  std::iota(tasks.begin(), tasks.end(), TaskId{0});
  ex.push_initial(tasks);
  ControllerParams params;
  params.m0 = 4;
  HybridController controller(params);
  const Trace trace = run_adaptive(ex, controller, {});
  ASSERT_TRUE(ex.done());
  ASSERT_EQ(ex.dead_letters().size(), 1u);
  const auto& dl = ex.dead_letters()[0];

  // (1) RoundStats::first_error is rendered into the trace, not swallowed.
  std::size_t rounds_with_error = 0;
  for (const auto& step : trace.steps) {
    if (!step.error.empty()) {
      ++rounds_with_error;
      EXPECT_EQ(step.error, "task five is poisoned");
    }
  }
  EXPECT_EQ(rounds_with_error, 3u);  // initial attempt + max_retries rounds

  // (2) The lane counters reconcile with the executor's view of the faults.
  const auto totals = tel.totals();
  EXPECT_EQ(totals.quarantined, ex.dead_letters().size());
  EXPECT_EQ(totals.retried, ex.totals().retried);
  EXPECT_EQ(totals.committed, 7u);

  // (3) The event stream carries a dead-letter summary per quarantine and a
  // retry event per absorbed transient.
  std::size_t retries = 0;
  std::size_t quarantines = 0;
  for (const auto& ev : tel.drain_events()) {
    if (ev.kind == telemetry::EventKind::kRetry) ++retries;
    if (ev.kind == telemetry::EventKind::kQuarantine) {
      ++quarantines;
      EXPECT_EQ(ev.a, dl.task);
      EXPECT_EQ(ev.b, dl.attempts);
      EXPECT_EQ(ev.note, dl.error);
    }
  }
  EXPECT_EQ(quarantines, 1u);
  EXPECT_EQ(retries, ex.totals().retried);
}

TEST(TelemetrySurfacing, InjectedFaultsEmitFaultFiredEvents) {
  // The injector's fire hook routes every firing into the control event
  // stream, so chaos post-mortems can line injections up with outcomes.
  ThreadPool pool(1);
  SpeculativeExecutor ex(
      pool, 4,
      [](TaskId t, IterationContext& ctx) {
        ctx.acquire(static_cast<std::uint32_t>(t));
      },
      7);
  telemetry::RuntimeTelemetry tel;
  ex.set_telemetry(&tel);
  FaultInjector inj(99);
  inj.set_rate(FaultSite::kOperatorThrow, 1.0);
  inj.set_fire_hook([&](FaultSite site, std::uint64_t a, std::uint64_t b) {
    tel.emit({telemetry::EventKind::kFaultFired, 0, ex.round_index(), a, b,
              0.0, 0.0, fault_site_name(site)});
  });
  ex.set_fault_injector(&inj);
  FailurePolicy fp;
  fp.max_retries = 8;
  fp.backoff_base_rounds = 1;
  ex.set_failure_policy(fp);
  std::vector<TaskId> tasks{0, 1, 2, 3};
  ex.push_initial(tasks);
  int rounds = 0;
  // Rate 1.0 fires on every attempt regardless of re-keying; drop it after
  // the first round so the workload drains while firings remain on record.
  while (!ex.done() && rounds++ < 1000) {
    (void)ex.run_round(4);
    inj.set_rate(FaultSite::kOperatorThrow, 0.0);
  }
  ASSERT_TRUE(ex.done());
  ASSERT_GT(inj.total_fired(), 0u);
  std::size_t fault_events = 0;
  for (const auto& ev : tel.drain_events()) {
    if (ev.kind == telemetry::EventKind::kFaultFired) {
      ++fault_events;
      EXPECT_EQ(ev.note, "operator-throw");
    }
  }
  EXPECT_EQ(fault_events, inj.total_fired());
}

}  // namespace
}  // namespace optipar
