// Mutation self-tests for the result certifiers (DESIGN.md §16): build a
// known-good answer per app, certify it (ok), then perturb it in each way
// the taxonomy names and demand the EXACT CertCode — the WHFC flow_tester
// discipline. A certifier that accepts a mutated answer, or rejects it
// with the wrong code, is itself broken.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "apps/boruvka/boruvka.hpp"
#include "apps/coloring/coloring.hpp"
#include "apps/dmr/delaunay.hpp"
#include "apps/dmr/mesh.hpp"
#include "apps/dmr/refine.hpp"
#include "apps/maxflow/maxflow.hpp"
#include "apps/mis/mis.hpp"
#include "apps/sp/formula.hpp"
#include "apps/sp/survey.hpp"
#include "apps/sssp/sssp.hpp"
#include "control/hybrid.hpp"
#include "graph/generators.hpp"
#include "graph/weighted_graph.hpp"
#include "rt/adaptive_executor.hpp"
#include "rt/fault_injector.hpp"
#include "rt/spec_executor.hpp"
#include "support/failure_policy.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"
#include "verify/app_certs.hpp"
#include "verify/certifier.hpp"
#include "verify/executor_cert.hpp"
#include "verify/harness.hpp"

namespace optipar {
namespace {

using verify::CertCode;
using verify::Certificate;

// ---------------------------------------------------------------------------
// MIS
// ---------------------------------------------------------------------------

struct MisFixture {
  CsrGraph g;
  mis::MisState state{0};

  MisFixture() : g(make_graph()), state(g.num_nodes()) {
    std::vector<NodeId> order(g.num_nodes());
    std::iota(order.begin(), order.end(), NodeId{0});
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      state.set(v, mis::NodeState::kOut);
    }
    for (const NodeId v : mis::greedy_sweep(g, order)) {
      state.set(v, mis::NodeState::kIn);
    }
  }

  static CsrGraph make_graph() {
    Rng rng(11);
    return gen::random_with_average_degree(60, 6, rng);
  }

  /// First IN node that has at least one neighbor.
  [[nodiscard]] NodeId in_node_with_neighbor() const {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (state.get(v) == mis::NodeState::kIn && g.degree(v) > 0) return v;
    }
    ADD_FAILURE() << "no in-set node with a neighbor";
    return 0;
  }
  [[nodiscard]] NodeId out_node() const {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (state.get(v) == mis::NodeState::kOut) return v;
    }
    ADD_FAILURE() << "no out-of-set node";
    return 0;
  }
};

TEST(MisCert, AcceptsGreedySweep) {
  MisFixture f;
  const Certificate cert = verify::certify_mis(f.g, f.state);
  EXPECT_TRUE(cert.ok()) << cert.describe();
  EXPECT_GT(cert.checked, 0u);
}

TEST(MisCert, RejectsAdjacentInPair) {
  MisFixture f;
  const NodeId v = f.in_node_with_neighbor();
  f.state.set(f.g.neighbors(v).front(), mis::NodeState::kIn);
  EXPECT_EQ(verify::certify_mis(f.g, f.state).code,
            CertCode::kNotIndependent);
}

TEST(MisCert, RejectsDroppedInNode) {
  MisFixture f;
  f.state.set(f.in_node_with_neighbor(), mis::NodeState::kOut);
  EXPECT_EQ(verify::certify_mis(f.g, f.state).code, CertCode::kNotMaximal);
}

TEST(MisCert, RejectsUndecidedNode) {
  MisFixture f;
  f.state.set(f.out_node(), mis::NodeState::kUndecided);
  EXPECT_EQ(verify::certify_mis(f.g, f.state).code,
            CertCode::kUndecidedNode);
}

// ---------------------------------------------------------------------------
// Coloring
// ---------------------------------------------------------------------------

struct ColoringFixture {
  CsrGraph g;
  coloring::ColoringState state{0};

  ColoringFixture() : g(MisFixture::make_graph()), state(g.num_nodes()) {
    // Sequential first-fit greedy: the invariant the certifier checks.
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      std::vector<bool> used(g.degree(v) + 1, false);
      for (const NodeId u : g.neighbors(v)) {
        const std::uint32_t c = state.color(u);
        if (c != coloring::kUncolored && c < used.size()) used[c] = true;
      }
      std::uint32_t c = 0;
      while (used[c]) ++c;
      state.set_color(v, c);
    }
  }

  [[nodiscard]] NodeId node_with_neighbor() const {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (g.degree(v) > 0) return v;
    }
    ADD_FAILURE() << "graph has no edges";
    return 0;
  }
};

TEST(ColoringCert, AcceptsGreedyColoring) {
  ColoringFixture f;
  const Certificate cert = verify::certify_coloring(f.g, f.state);
  EXPECT_TRUE(cert.ok()) << cert.describe();
}

TEST(ColoringCert, RejectsMonochromaticEdge) {
  ColoringFixture f;
  const NodeId v = f.node_with_neighbor();
  f.state.set_color(v, f.state.color(f.g.neighbors(v).front()));
  EXPECT_EQ(verify::certify_coloring(f.g, f.state).code,
            CertCode::kBadColor);
}

TEST(ColoringCert, RejectsUncoloredNode) {
  ColoringFixture f;
  f.state.set_color(0, coloring::kUncolored);
  EXPECT_EQ(verify::certify_coloring(f.g, f.state).code,
            CertCode::kUncolored);
}

TEST(ColoringCert, RejectsPaletteOverflow) {
  ColoringFixture f;
  f.state.set_color(0, f.g.max_degree() + 5);
  EXPECT_EQ(verify::certify_coloring(f.g, f.state).code,
            CertCode::kPaletteOverflow);
}

// ---------------------------------------------------------------------------
// SSSP
// ---------------------------------------------------------------------------

struct SsspFixture {
  WeightedGraph g;
  std::vector<double> dist;

  // Path 0 -1- 1 -2- 2: dist = [0, 1, 3]; every mutation below is exact.
  SsspFixture()
      : g(WeightedGraph::from_edges(3, {{0, 1, 1.0}, {1, 2, 2.0}})),
        dist(sssp::dijkstra(g, 0)) {}
};

TEST(SsspCert, AcceptsDijkstra) {
  SsspFixture f;
  const Certificate cert = verify::certify_sssp(f.g, 0, f.dist);
  EXPECT_TRUE(cert.ok()) << cert.describe();
}

TEST(SsspCert, RejectsNonzeroSourceDistance) {
  SsspFixture f;
  f.dist[0] = 1.0;
  EXPECT_EQ(verify::certify_sssp(f.g, 0, f.dist).code,
            CertCode::kBadSourceDistance);
}

TEST(SsspCert, RejectsRelaxableEdge) {
  SsspFixture f;
  f.dist[2] = 10.0;  // edge (1, 2) would relax 10 to 3
  EXPECT_EQ(verify::certify_sssp(f.g, 0, f.dist).code, CertCode::kRelaxable);
}

TEST(SsspCert, RejectsLabelWithNoWitness) {
  SsspFixture f;
  f.dist[2] = 2.5;  // below the true 3.0: no edge is tight, none relaxable
  EXPECT_EQ(verify::certify_sssp(f.g, 0, f.dist).code, CertCode::kNoWitness);
}

// Dijkstra on a random instance must certify too (not just the toy path).
TEST(SsspCert, AcceptsDijkstraOnRandomGraph) {
  Rng rng(5);
  const CsrGraph base = gen::random_with_average_degree(80, 6, rng);
  std::vector<WeightedEdgeTriple> edges;
  for (const auto& [u, v] : base.edges()) {
    edges.push_back({u, v, rng.uniform() * 10.0 + 0.1});
  }
  const WeightedGraph g = WeightedGraph::from_edges(base.num_nodes(), edges);
  const Certificate cert = verify::certify_sssp(g, 0, sssp::dijkstra(g, 0));
  EXPECT_TRUE(cert.ok()) << cert.describe();
}

// ---------------------------------------------------------------------------
// Boruvka
// ---------------------------------------------------------------------------

TEST(BoruvkaCert, AcceptsKruskalReference) {
  // Triangle: MST = {0-1, 1-2}, weight 3, two edges.
  const std::vector<boruvka::WeightedEdge> edges = {
      {0, 1, 1.0}, {1, 2, 2.0}, {0, 2, 10.0}};
  const Certificate cert = verify::certify_boruvka(3, edges, 3.0, 2);
  EXPECT_TRUE(cert.ok()) << cert.describe();
}

TEST(BoruvkaCert, RejectsWrongWeight) {
  const std::vector<boruvka::WeightedEdge> edges = {
      {0, 1, 1.0}, {1, 2, 2.0}, {0, 2, 10.0}};
  EXPECT_EQ(verify::certify_boruvka(3, edges, 4.0, 2).code,
            CertCode::kWeightMismatch);
}

TEST(BoruvkaCert, RejectsWrongEdgeCount) {
  const std::vector<boruvka::WeightedEdge> edges = {
      {0, 1, 1.0}, {1, 2, 2.0}, {0, 2, 10.0}};
  EXPECT_EQ(verify::certify_boruvka(3, edges, 3.0, 3).code,
            CertCode::kNotSpanning);
}

// ---------------------------------------------------------------------------
// Maxflow
// ---------------------------------------------------------------------------

struct MaxflowFixture {
  // s=0 -cap 3-> a=1 -cap 2-> t=2; max flow 2.
  maxflow::FlowNetwork net{3};

  MaxflowFixture() {
    net.add_arc(0, 1, 3.0);
    net.add_arc(1, 2, 2.0);
  }
  // Arc indices: node 0 holds [s->a]; node 1 holds [rev(s->a), a->t].
  void push_sa(double amount) { net.push(0, 0, amount); }
  void push_at(double amount) { net.push(1, 1, amount); }
};

TEST(MaxflowCert, AcceptsSaturatedFlow) {
  MaxflowFixture f;
  f.push_sa(2.0);
  f.push_at(2.0);
  const Certificate cert = verify::certify_maxflow(f.net, 0, 2, 2.0);
  EXPECT_TRUE(cert.ok()) << cert.describe();
}

TEST(MaxflowCert, RejectsOverfilledArc) {
  MaxflowFixture f;
  f.push_sa(4.0);  // capacity 3
  f.push_at(2.0);
  EXPECT_EQ(verify::certify_maxflow(f.net, 0, 2, 2.0).code,
            CertCode::kFlowViolation);
}

TEST(MaxflowCert, RejectsUnconservedNode) {
  MaxflowFixture f;
  f.push_sa(2.0);  // excess stranded at node 1
  EXPECT_EQ(verify::certify_maxflow(f.net, 0, 2, 2.0).code,
            CertCode::kNotConserved);
}

TEST(MaxflowCert, RejectsSubmaximalFlow) {
  MaxflowFixture f;
  f.push_sa(1.0);  // feasible and conserved, but an augmenting path remains
  f.push_at(1.0);
  EXPECT_EQ(verify::certify_maxflow(f.net, 0, 2, 1.0).code,
            CertCode::kCutMismatch);
}

// ---------------------------------------------------------------------------
// Survey propagation
// ---------------------------------------------------------------------------

struct SpFixture {
  // (x0) ∧ (¬x0 ∨ x1) ∧ (x2): unique satisfying assignment 1,1,1 on the
  // constrained vars; every single-bit flip of x0 or x2 falsifies.
  sp::Formula formula{3,
                      {sp::Clause{{{0, true}}},
                       sp::Clause{{{0, false}, {1, true}}},
                       sp::Clause{{{2, true}}}}};
  sp::SidResult result;

  SpFixture() {
    result.satisfied = true;
    result.assignment = {1, 1, 1};
  }
};

TEST(SpCert, AcceptsSatisfyingAssignment) {
  SpFixture f;
  const Certificate cert = verify::certify_sp(f.formula, f.result);
  EXPECT_TRUE(cert.ok()) << cert.describe();
}

TEST(SpCert, RejectsFlippedVariable) {
  SpFixture f;
  f.result.assignment[2] = 0;
  EXPECT_EQ(verify::certify_sp(f.formula, f.result).code,
            CertCode::kBadAssignment);
}

TEST(SpCert, RejectsTruncatedAssignment) {
  SpFixture f;
  f.result.assignment.pop_back();
  EXPECT_EQ(verify::certify_sp(f.formula, f.result).code,
            CertCode::kBadAssignment);
}

TEST(SpCert, RejectsUnsatisfiedClaim) {
  SpFixture f;
  f.result.satisfied = false;
  EXPECT_EQ(verify::certify_sp(f.formula, f.result).code,
            CertCode::kNotSatisfied);
}

// ---------------------------------------------------------------------------
// Delaunay mesh refinement
// ---------------------------------------------------------------------------

struct MeshFixture {
  std::vector<dmr::Point2> pts;
  dmr::Mesh mesh;
  dmr::RefineQuality q;

  MeshFixture() {
    Rng rng(3);
    for (int i = 0; i < 24; ++i) {
      pts.push_back({rng.uniform() * 100.0, rng.uniform() * 100.0});
    }
    dmr::build_delaunay(mesh, pts, 16.0);
    q.min_angle_deg = 0.0;  // nothing is refinable-bad by construction
    q.set_domain(pts);
  }

  [[nodiscard]] Certificate certify() const {
    return verify::certify_mesh(mesh, q, dmr::kNumSuperVertices,
                                /*spot_checks=*/256, /*seed=*/9);
  }
};

TEST(MeshCert, AcceptsDelaunayTriangulation) {
  MeshFixture f;
  const Certificate cert = f.certify();
  EXPECT_TRUE(cert.ok()) << cert.describe();
}

TEST(MeshCert, RejectsBrokenAdjacency) {
  MeshFixture f;
  // Sever one side of a neighbor link: validate() demands symmetry.
  for (const dmr::TriId t : f.mesh.alive_triangles()) {
    for (int slot = 0; slot < 3; ++slot) {
      if (f.mesh.neighbor(t, slot) != dmr::kNoNeighbor) {
        f.mesh.set_neighbor(t, slot, dmr::kNoNeighbor);
        EXPECT_EQ(f.certify().code, CertCode::kBadMesh);
        return;
      }
    }
  }
  FAIL() << "no adjacent triangle pair to sever";
}

TEST(MeshCert, RejectsSurvivingBadTriangle) {
  MeshFixture f;
  f.q.min_angle_deg = 60.0;  // random-point triangulations cannot meet this
  EXPECT_EQ(f.certify().code, CertCode::kStillBad);
}

TEST(MeshCert, RejectsNonDelaunayPair) {
  // Handmade pair whose shared diagonal should have been flipped:
  // D lies strictly inside circumcircle(A, B, C).
  dmr::Mesh mesh;
  const dmr::PointId a = mesh.add_point({0.0, 0.0});
  const dmr::PointId b = mesh.add_point({2.0, 0.0});
  const dmr::PointId c = mesh.add_point({2.0, 2.0});
  const dmr::PointId d = mesh.add_point({-0.3, 1.0});
  const dmr::TriId t1 = mesh.create_triangle(a, b, c);
  const dmr::TriId t2 = mesh.create_triangle(a, c, d);
  mesh.set_neighbor(t1, 1, t2);  // across edge a-c (opposite b)
  mesh.set_neighbor(t2, 2, t1);  // across edge a-c (opposite d)
  dmr::RefineQuality q;
  q.min_angle_deg = 0.0;
  EXPECT_EQ(verify::certify_mesh(mesh, q, /*skip_verts_below=*/0,
                                 /*spot_checks=*/16, /*seed=*/1)
                .code,
            CertCode::kNotDelaunay);
}

// ---------------------------------------------------------------------------
// Executor completeness + chaos certify-after-recovery
// ---------------------------------------------------------------------------

TEST(ExecutorCert, RefutesUndrainedRun) {
  ThreadPool pool(2);
  SpeculativeExecutor ex(pool, 8, [](TaskId, IterationContext&) {}, 1);
  std::vector<TaskId> tasks(8);
  std::iota(tasks.begin(), tasks.end(), TaskId{0});
  ex.push_initial(tasks);
  const Certificate cert = verify::certify_drained_run(ex, 8);
  EXPECT_EQ(cert.code, CertCode::kNotDrained);
}

/// Injected operator faults abort and retry iterations; after the run
/// drains, the completeness certificate must hold AND the shared state
/// must match the sequential oracle — recovery leaves no trace.
TEST(ExecutorCert, ChaosRunCertifiesAfterRecovery) {
  constexpr std::uint32_t kCells = 32;
  constexpr std::uint32_t kTasks = 200;
  Rng gen_rng(17);
  struct Effect {
    std::uint32_t cell;
    std::int64_t delta;
  };
  std::vector<Effect> effects(kTasks);
  for (auto& e : effects) {
    e.cell = static_cast<std::uint32_t>(gen_rng.below(kCells));
    e.delta = gen_rng.between(-5, 5);
  }
  std::vector<std::int64_t> oracle(kCells, 0);
  for (const auto& e : effects) oracle[e.cell] += e.delta;

  std::vector<std::int64_t> cells(kCells, 0);
  ThreadPool pool(2);
  SpeculativeExecutor ex(
      pool, kCells,
      [&](TaskId t, IterationContext& ctx) {
        const Effect& e = effects[t];
        ctx.acquire(e.cell);
        cells[e.cell] += e.delta;
        ctx.on_abort([&cells, &e] { cells[e.cell] -= e.delta; });
      },
      41);

  FaultInjector injector(23);
  injector.set_rate(FaultSite::kOperatorThrow, 0.05);
  ex.set_fault_injector(&injector);
  FailurePolicy policy;
  policy.max_retries = 8;  // enough that no task dead-letters at 5% rate
  ex.set_failure_policy(policy);

  std::vector<TaskId> tasks(kTasks);
  std::iota(tasks.begin(), tasks.end(), TaskId{0});
  ex.push_initial(tasks);

  ControllerParams params;
  HybridController controller(params);
  AdaptiveRunConfig config;
  config.certifier = [&ex] { return verify::certify_drained_run(ex, kTasks); };
  AdaptiveRun run(ex, controller, std::move(config));
  while (run.step()) {
  }
  run.ensure_certified();

  ASSERT_GT(injector.total_fired(), 0u) << "chaos run injected nothing";
  ASSERT_TRUE(run.certificate().has_value());
  EXPECT_TRUE(run.certificate()->ok()) << run.certificate()->describe();
  EXPECT_TRUE(ex.dead_letters().empty());
  EXPECT_EQ(cells, oracle);
}

// ---------------------------------------------------------------------------
// Harness end-to-end: every app × scheduler certifies on a small instance
// ---------------------------------------------------------------------------

struct HarnessCase {
  verify::AppKind app;
  sched::Backend backend;
};

class VerifyHarnessTest : public ::testing::TestWithParam<HarnessCase> {};

TEST_P(VerifyHarnessTest, SmallRunCertifies) {
  const HarnessCase param = GetParam();
  ThreadPool pool(2);
  verify::AppRunOptions opt;
  opt.nodes = 120;
  opt.degree = 6;
  opt.seed = 2;
  opt.scheduler = param.backend;
  const verify::AppRunReport report =
      verify::run_app_certified(param.app, pool, opt);
  EXPECT_TRUE(report.certificate.ok()) << report.certificate.describe();
  EXPECT_GT(report.certificate.checked, 0u);
}

std::vector<HarnessCase> harness_cases() {
  std::vector<HarnessCase> cases;
  for (const verify::AppKind app :
       {verify::AppKind::kMis, verify::AppKind::kColoring,
        verify::AppKind::kSssp, verify::AppKind::kBoruvka,
        verify::AppKind::kMaxflow, verify::AppKind::kSp,
        verify::AppKind::kDmr}) {
    for (const sched::Backend backend :
         {sched::Backend::kRandom, sched::Backend::kChromatic,
          sched::Backend::kRelaxed}) {
      cases.push_back({app, backend});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllAppsAllBackends, VerifyHarnessTest,
    ::testing::ValuesIn(harness_cases()),
    [](const ::testing::TestParamInfo<HarnessCase>& info) {
      return std::string(verify::app_name(info.param.app)) + "_" +
             sched::backend_name(info.param.backend);
    });

}  // namespace
}  // namespace optipar
