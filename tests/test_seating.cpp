#include "model/seating.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "graph/algos.hpp"
#include "graph/generators.hpp"

namespace optipar {
namespace {

/// Brute force: exact E[greedy MIS] by enumerating all permutations.
double brute_force_expected_mis(const CsrGraph& g) {
  std::vector<NodeId> perm(g.num_nodes());
  std::iota(perm.begin(), perm.end(), 0u);
  double total = 0.0;
  std::uint64_t count = 0;
  do {
    total += static_cast<double>(greedy_mis(g, perm).size());
    ++count;
  } while (std::next_permutation(perm.begin(), perm.end()));
  return total / static_cast<double>(count);
}

TEST(Seating, PathBaseCases) {
  EXPECT_DOUBLE_EQ(seating::expected_path(0), 0.0);
  EXPECT_DOUBLE_EQ(seating::expected_path(1), 1.0);
  EXPECT_DOUBLE_EQ(seating::expected_path(2), 1.0);
  EXPECT_NEAR(seating::expected_path(3), 5.0 / 3.0, 1e-12);
}

TEST(Seating, PathDpMatchesBruteForce) {
  for (std::uint32_t n = 2; n <= 8; ++n) {
    EXPECT_NEAR(seating::expected_path(n),
                brute_force_expected_mis(gen::path(n)), 1e-9)
        << "n=" << n;
  }
}

TEST(Seating, CycleMatchesBruteForce) {
  for (std::uint32_t n = 3; n <= 8; ++n) {
    EXPECT_NEAR(seating::expected_cycle(n),
                brute_force_expected_mis(gen::cycle(n)), 1e-9)
        << "n=" << n;
  }
  EXPECT_THROW((void)seating::expected_cycle(2), std::invalid_argument);
}

TEST(Seating, TableIsConsistentWithScalar) {
  const auto table = seating::expected_path_table(50);
  ASSERT_EQ(table.size(), 51u);
  for (const std::uint32_t n : {0u, 1u, 10u, 50u}) {
    EXPECT_DOUBLE_EQ(table[n], seating::expected_path(n));
  }
}

TEST(Seating, DensityConvergesToClassicalLimit) {
  // E(n)/n → (1 − e^{−2})/2 ≈ 0.432332.
  const double limit = seating::path_density_limit();
  EXPECT_NEAR(limit, 0.432332, 1e-6);
  EXPECT_NEAR(seating::expected_path(2000) / 2000.0, limit, 1e-3);
  EXPECT_NEAR(seating::expected_path(20000) / 20000.0, limit, 1e-4);
}

TEST(Seating, PathExpectationRespectsTuran) {
  // Path average degree -> 2, so Turán gives n/3; jamming 0.4323n beats it.
  for (const std::uint32_t n : {10u, 100u, 1000u}) {
    EXPECT_GE(seating::expected_path(n),
              static_cast<double>(n) / 3.0);
  }
}

TEST(Seating, MonteCarloMatchesDpOnPath) {
  Rng rng(1);
  const auto g = gen::path(60);
  const auto mc = seating::estimate(g, 4000, rng);
  EXPECT_NEAR(mc.mean(), seating::expected_path(60), 4 * mc.ci95());
}

TEST(Seating, MonteCarloMatchesDpOnCycle) {
  Rng rng(2);
  const auto g = gen::cycle(60);
  const auto mc = seating::estimate(g, 4000, rng);
  EXPECT_NEAR(mc.mean(), seating::expected_cycle(60), 4 * mc.ci95());
}

TEST(Seating, GridDensityIsInKnownRange) {
  // The unfriendly theater seating constant for the 2-D grid is ≈ 0.3641
  // (Georgiou, Kranakis & Krizanc [11]).
  Rng rng(3);
  const auto g = gen::grid_2d(40, 40);
  const auto mc = seating::estimate(g, 400, rng);
  EXPECT_NEAR(mc.mean() / 1600.0, 0.3641, 0.01);
}

TEST(Seating, CliqueExpectationIsOne) {
  Rng rng(4);
  const auto mc = seating::estimate(gen::complete(10), 50, rng);
  EXPECT_DOUBLE_EQ(mc.mean(), 1.0);
  EXPECT_DOUBLE_EQ(mc.variance(), 0.0);
}

}  // namespace
}  // namespace optipar
