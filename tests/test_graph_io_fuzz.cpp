// Deterministic hostile-input corpus for the graph reader (DESIGN.md §11):
// every corrupt file must be refused with the RIGHT GraphIoError kind, and a
// systematic mutation sweep over a valid file must never produce anything
// but a clean parse or a typed error — no crash, no hang, no runaway
// allocation. This is the checked-in, reproducible stand-in for a fuzzer.
#include "graph/graph_io.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "graph/generators.hpp"

namespace optipar {
namespace {

using Kind = io::GraphIoError::Kind;

struct CorpusEntry {
  const char* name;
  const char* input;
  Kind kind;
  std::size_t line;  ///< expected GraphIoError::line() (0 = file-level)
};

const CorpusEntry kCorpus[] = {
    {"empty file", "", Kind::kBadHeader, 0},
    {"comments only", "# nothing\nc here\n\n", Kind::kBadHeader, 0},
    {"edge before header", "0 1\n", Kind::kBadHeader, 1},
    {"wrong header tag", "q 3 1\n0 1\n", Kind::kBadHeader, 1},
    {"header missing m", "p 3\n", Kind::kBadHeader, 1},
    {"header trailing token", "p 3 1 7\n0 1\n", Kind::kBadHeader, 1},
    {"negative node count", "p -3 1\n", Kind::kBadHeader, 1},
    {"negative edge count", "p 3 -1\n", Kind::kBadHeader, 1},
    {"non-numeric count", "p three 1\n", Kind::kBadHeader, 1},
    {"node count overflows NodeId", "p 4294967296 0\n", Kind::kOverflow, 1},
    {"node count absurd", "p 99999999999999999 0\n", Kind::kOverflow, 1},
    {"edge count beyond simple graph", "p 3 4\n0 1\n0 2\n1 2\n2 0\n",
     Kind::kOverflow, 1},
    {"edge with one endpoint", "p 3 1\n0\n", Kind::kBadEdge, 2},
    {"edge with letters", "p 3 1\n0 x\n", Kind::kBadEdge, 2},
    {"edge trailing token", "p 3 1\n0 1 9\n", Kind::kBadEdge, 2},
    {"negative endpoint", "p 3 1\n-1 2\n", Kind::kOutOfRange, 2},
    {"endpoint == n", "p 3 1\n0 3\n", Kind::kOutOfRange, 2},
    {"endpoint far out", "p 3 1\n0 4000000000\n", Kind::kOutOfRange, 2},
    {"self loop", "p 3 1\n1 1\n", Kind::kSelfLoop, 2},
    {"duplicate edge", "p 3 2\n0 1\n0 1\n", Kind::kDuplicateEdge, 3},
    {"duplicate reversed", "p 3 2\n0 1\n1 0\n", Kind::kDuplicateEdge, 3},
    {"more edges than promised", "p 3 1\n0 1\n1 2\n", Kind::kCountMismatch,
     3},
    {"fewer edges than promised", "p 3 2\n0 1\n", Kind::kCountMismatch, 0},
    {"truncated mid-file", "p 4 3\n0 1\n2 3\n", Kind::kCountMismatch, 0},
    // A header claiming ~5e11 edges for 10^6 nodes passes the n(n-1)/2
    // check; the reserve clamp (kReserveCap) must keep the refusal cheap
    // instead of attempting a multi-terabyte allocation first.
    {"hostile reserve header", "p 1000000 400000000000\n",
     Kind::kCountMismatch, 0},
};

TEST(GraphIoFuzz, CorpusEntriesFailWithTypedErrors) {
  for (const auto& entry : kCorpus) {
    std::stringstream ss(entry.input);
    try {
      (void)io::read_edge_list(ss);
      FAIL() << entry.name << ": parsed instead of throwing";
    } catch (const io::GraphIoError& e) {
      EXPECT_EQ(e.kind(), entry.kind) << entry.name << ": " << e.what();
      EXPECT_EQ(e.line(), entry.line) << entry.name << ": " << e.what();
    } catch (const std::exception& e) {
      FAIL() << entry.name << ": untyped exception: " << e.what();
    }
  }
}

TEST(GraphIoFuzz, MutationSweepNeverEscapesTheTaxonomy) {
  // Serialize a real graph, then mutate every byte position with a small
  // set of hostile substitutions. Each mutant must either round-trip to a
  // structurally valid graph or throw GraphIoError — nothing else.
  Rng rng(7);
  const auto g = gen::gnm_random(12, 20, rng);
  std::stringstream base;
  io::write_edge_list(g, base);
  const std::string original = base.str();

  const char mutations[] = {'x', '-', '9', ' ', '#', '\n'};
  std::size_t parsed = 0;
  std::size_t refused = 0;
  for (std::size_t pos = 0; pos < original.size(); ++pos) {
    for (const char mut : mutations) {
      std::string mutant = original;
      if (mutant[pos] == mut) continue;
      mutant[pos] = mut;
      std::stringstream ss(mutant);
      try {
        const auto back = io::read_edge_list(ss);
        // Accepted mutants must still satisfy the format's invariants.
        EXPECT_LE(back.num_edges(), back.num_nodes() * back.num_nodes());
        ++parsed;
      } catch (const io::GraphIoError&) {
        ++refused;
      } catch (const std::exception& e) {
        FAIL() << "pos " << pos << " mut '" << mut
               << "': untyped exception: " << e.what();
      }
    }
  }
  // The sweep must have actually exercised both outcomes.
  EXPECT_GT(refused, 0u);
  EXPECT_GT(parsed + refused, original.size());
}

TEST(GraphIoFuzz, TruncationSweepNeverEscapesTheTaxonomy) {
  Rng rng(8);
  const auto g = gen::gnm_random(10, 14, rng);
  std::stringstream base;
  io::write_edge_list(g, base);
  const std::string original = base.str();

  std::size_t parsed = 0;
  for (std::size_t len = 0; len < original.size(); ++len) {
    std::stringstream ss(original.substr(0, len));
    try {
      const auto back = io::read_edge_list(ss);
      // A text format cannot detect a clipped trailing newline (or a
      // clipped final digit that still forms a fresh valid edge), but
      // anything that parses must fully satisfy the header's contract.
      EXPECT_EQ(back.num_nodes(), g.num_nodes()) << "truncation at " << len;
      EXPECT_EQ(back.num_edges(), g.num_edges()) << "truncation at " << len;
      ++parsed;
    } catch (const io::GraphIoError&) {
      // expected for almost every cut point
    } catch (const std::exception& e) {
      FAIL() << "truncation at " << len
             << ": untyped exception: " << e.what();
    }
  }
  // The overwhelming majority of cut points must refuse: only a cut inside
  // the final line's trailing bytes can still satisfy the edge count.
  EXPECT_LT(parsed, 4u);
}

}  // namespace
}  // namespace optipar
