// In-process end-to-end tests of the serve daemon (DESIGN.md §13): the
// happy path, typed refusals, kOverloaded backpressure under a saturating
// submission burst, cancellation, poisoned-job quarantine, deadlines,
// drain shutdown, and the crash-recovery contract — immediate shutdown
// abandons an active job whose next incarnation resumes it and finishes
// with per-round output byte-identical to an uninterrupted run. The
// process-level kill -9 version of the last scenario lives in
// scripts/run_serve_smoke.sh; here the "crash" is Server teardown, which
// exercises the same WAL + checkpoint path without leaving the test
// runner.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "graph/generators.hpp"
#include "graph/graph_io.hpp"
#include "model/conflict_ratio.hpp"
#include "serve/client.hpp"
#include "support/rng.hpp"

namespace optipar::serve {
namespace {

using namespace std::chrono_literals;

constexpr int kIoTimeoutMs = 10000;

/// Fresh socket path + state dir per test (short paths: AF_UNIX limit).
struct TestPaths {
  explicit TestPaths(const std::string& name)
      : socket("/tmp/opsv_" + name + ".sock"),
        state("/tmp/opsv_" + name) {
    std::system(("rm -rf " + state).c_str());
    std::remove(socket.c_str());
  }
  std::string socket;
  std::string state;
};

std::string graph_text(NodeId n, std::uint32_t d) {
  const CsrGraph g = gen::union_of_cliques(n, d);
  std::ostringstream os;
  io::write_edge_list(g, os);
  return os.str();
}

Client connect(const TestPaths& paths) {
  return Client::connect(paths.socket, kIoTimeoutMs);
}

/// The `"type":"round"` lines of a trace — the byte-identity scope shared
/// with scripts/run_crash.sh (summary/telemetry lines may differ between an
/// interrupted and an uninterrupted run; the schedule must not).
std::vector<std::string> round_lines(const std::string& trace_text) {
  std::vector<std::string> out;
  std::istringstream is(trace_text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.find("\"type\":\"round\"") != std::string::npos) {
      out.push_back(line);
    }
  }
  return out;
}

JobStatusReply poll_until_running(Client& client, std::uint64_t job) {
  for (int i = 0; i < 20000; ++i) {
    const auto status = client.status(job);
    if (status.state != JobState::kQueued &&
        status.state != JobState::kRunning) {
      return status;  // already terminal — let the caller decide
    }
    if (status.state == JobState::kRunning && status.rounds >= 1) {
      return status;
    }
    std::this_thread::sleep_for(1ms);
  }
  throw std::runtime_error("job never started running");
}

// ---------------------------------------------------------------------------

TEST(Serve, HappyPathRunsAJobToCompletion) {
  const TestPaths paths("happy");
  ServerConfig config;
  config.socket_path = paths.socket;
  config.state_dir = paths.state;
  config.threads = 1;
  Server server(config);
  server.start();
  EXPECT_EQ(server.recovered_jobs(), 0u);

  auto client = connect(paths);
  EXPECT_EQ(client.health().message, "ok");
  const auto uploaded = client.upload_graph("g1", graph_text(96, 5));
  EXPECT_FALSE(uploaded.message.empty());

  RunRequest req;
  req.graph = "g1";
  req.seed = 7;
  const auto result = client.run(req);
  const auto* accepted = std::get_if<JobAcceptedReply>(&result);
  ASSERT_NE(accepted, nullptr);
  const auto status = client.wait_for_job(accepted->job);
  EXPECT_EQ(status.state, JobState::kDone);
  EXPECT_EQ(status.kind, JobKind::kRun);
  EXPECT_EQ(status.committed, 96u);
  EXPECT_GT(status.rounds, 0u);
  EXPECT_FALSE(status.resumed);

  const auto trace = client.trace(accepted->job);
  EXPECT_EQ(round_lines(trace.text).size(), status.rounds);
  EXPECT_NE(trace.text.find("trace_summary"), std::string::npos);

  const auto info = client.server_status();
  EXPECT_EQ(info.submitted, 1u);
  EXPECT_EQ(info.completed, 1u);
  EXPECT_EQ(info.rejected, 0u);
  EXPECT_EQ(info.lanes, 1u);

  const auto metrics = client.metrics("prometheus");
  EXPECT_NE(metrics.text.find("optipar_serve_submitted_total"),
            std::string::npos);
  EXPECT_NE(metrics.text.find("optipar_serve_queue_depth"),
            std::string::npos);
  EXPECT_THROW((void)client.metrics("xml"), ServeError);

  server.request_shutdown(/*drain=*/false);
  server.wait();
}

TEST(Serve, EstimateJobMatchesDirectComputation) {
  const TestPaths paths("estimate");
  ServerConfig config;
  config.socket_path = paths.socket;
  config.state_dir = paths.state;
  config.threads = 1;
  Server server(config);
  server.start();

  const std::string text = graph_text(96, 5);
  auto client = connect(paths);
  (void)client.upload_graph("g1", text);
  EstimateRequest req;
  req.graph = "g1";
  req.rho = 0.25;
  req.trials = 64;
  req.seed = 11;
  const auto result = client.estimate(req);
  const auto* accepted = std::get_if<JobAcceptedReply>(&result);
  ASSERT_NE(accepted, nullptr);
  const auto status = client.wait_for_job(accepted->job);
  EXPECT_EQ(status.state, JobState::kDone);
  EXPECT_EQ(status.kind, JobKind::kEstimate);

  // Same seed discipline as `optipar_cli mu`: the daemon must compute the
  // identical operating point.
  std::istringstream is(text);
  const CsrGraph g = io::read_edge_list(is);
  Rng rng(req.seed);
  Rng measure = rng.split();
  const std::uint32_t want = find_mu(g, req.rho, req.trials, measure);
  EXPECT_EQ(status.mu, want);

  server.request_shutdown(false);
  server.wait();
}

TEST(Serve, RefusalsAreTypedNotFatal) {
  const TestPaths paths("refusals");
  ServerConfig config;
  config.socket_path = paths.socket;
  config.state_dir = paths.state;
  config.threads = 1;
  Server server(config);
  server.start();

  auto client = connect(paths);
  try {
    (void)client.status(999);
    FAIL() << "expected ServeError";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUnknownJob);
  }
  try {
    (void)client.upload_graph("../escape", "p 1 0\n");
    FAIL() << "expected ServeError";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kBadRequest);
  }
  try {
    (void)client.upload_graph("bad", "this is not a graph\n");
    FAIL() << "expected ServeError";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kBadRequest);
  }
  {
    RunRequest req;
    req.graph = "never-uploaded";
    const auto result = client.run(req);
    const auto* err = std::get_if<ErrorReply>(&result);
    ASSERT_NE(err, nullptr);
    EXPECT_EQ(err->code, ErrorCode::kUnknownGraph);
  }
  (void)client.upload_graph("g1", graph_text(24, 5));
  {
    RunRequest req;
    req.graph = "g1";
    req.rho = 7.5;
    const auto result = client.run(req);
    const auto* err = std::get_if<ErrorReply>(&result);
    ASSERT_NE(err, nullptr);
    EXPECT_EQ(err->code, ErrorCode::kBadRequest);
  }
  {
    RunRequest req;
    req.graph = "g1";
    req.controller = "no-such-policy";
    const auto result = client.run(req);
    const auto* err = std::get_if<ErrorReply>(&result);
    ASSERT_NE(err, nullptr);
    EXPECT_EQ(err->code, ErrorCode::kBadRequest);
  }
  // After every refusal the daemon still serves.
  EXPECT_EQ(client.health().message, "ok");

  server.request_shutdown(false);
  server.wait();
}

TEST(Serve, OverloadShedsWithTypedBackpressureAndStaysHealthy) {
  // N submissions against capacity K < N: the surplus gets kOverloaded
  // (never a hang), health keeps answering, and every accepted job still
  // reaches a terminal state.
  const TestPaths paths("overload");
  ServerConfig config;
  config.socket_path = paths.socket;
  config.state_dir = paths.state;
  config.threads = 1;
  config.queue_capacity = 1;
  config.max_active = 1;
  Server server(config);
  server.start();

  auto client = connect(paths);
  // Dense-conflict graph: many rounds at one lane, so the active slot stays
  // occupied for the whole submission burst.
  (void)client.upload_graph("big", graph_text(10200, 50));

  std::vector<std::uint64_t> accepted;
  std::size_t overloaded = 0;
  for (int i = 0; i < 8; ++i) {
    RunRequest req;
    req.graph = "big";
    req.seed = 100 + static_cast<std::uint64_t>(i);
    const auto result = client.run(req);
    if (const auto* ok = std::get_if<JobAcceptedReply>(&result)) {
      accepted.push_back(ok->job);
    } else if (std::get_if<OverloadedReply>(&result) != nullptr) {
      ++overloaded;
    } else {
      FAIL() << "unexpected ErrorReply during the burst";
    }
  }
  EXPECT_GE(accepted.size(), 1u);
  EXPECT_GE(overloaded, 1u) << "burst never hit the capacity bound";

  // Graceful degradation: the daemon answers health and status while
  // saturated.
  auto probe = connect(paths);
  EXPECT_EQ(probe.health().message, "ok");
  const auto info = probe.server_status();
  EXPECT_EQ(info.rejected, overloaded);
  EXPECT_EQ(info.capacity, 1u);

  // Shed the backlog and confirm nothing is wedged.
  for (const std::uint64_t job : accepted) (void)client.cancel(job);
  for (const std::uint64_t job : accepted) {
    const auto status = client.wait_for_job(job, 5, 120000);
    EXPECT_TRUE(status.state == JobState::kCancelled ||
                status.state == JobState::kDone)
        << job_state_name(status.state);
  }

  server.request_shutdown(false);
  server.wait();
}

TEST(Serve, CancelReachesQueuedAndRunningJobs) {
  const TestPaths paths("cancel");
  ServerConfig config;
  config.socket_path = paths.socket;
  config.state_dir = paths.state;
  config.threads = 1;
  config.max_active = 1;
  Server server(config);
  server.start();

  auto client = connect(paths);
  (void)client.upload_graph("big", graph_text(10200, 50));

  RunRequest req;
  req.graph = "big";
  const auto first = client.run(req);
  const auto* running = std::get_if<JobAcceptedReply>(&first);
  ASSERT_NE(running, nullptr);
  const auto second = client.run(req);
  const auto* queued = std::get_if<JobAcceptedReply>(&second);
  ASSERT_NE(queued, nullptr);

  // Cancel the queued job first: it must terminate without ever running.
  (void)client.cancel(queued->job);
  (void)client.cancel(running->job);
  const auto s1 = client.wait_for_job(running->job, 5, 120000);
  const auto s2 = client.wait_for_job(queued->job, 5, 120000);
  EXPECT_TRUE(s1.state == JobState::kCancelled || s1.state == JobState::kDone)
      << job_state_name(s1.state);
  EXPECT_EQ(s2.state, JobState::kCancelled);
  EXPECT_EQ(s2.rounds, 0u);

  server.request_shutdown(false);
  server.wait();
}

TEST(Serve, DeadlineExpiryBecomesTimedOut) {
  const TestPaths paths("deadline");
  ServerConfig config;
  config.socket_path = paths.socket;
  config.state_dir = paths.state;
  config.threads = 1;
  Server server(config);
  server.start();

  auto client = connect(paths);
  (void)client.upload_graph("big", graph_text(10200, 50));
  RunRequest req;
  req.graph = "big";
  req.timeout_ms = 1;
  const auto result = client.run(req);
  const auto* accepted = std::get_if<JobAcceptedReply>(&result);
  ASSERT_NE(accepted, nullptr);
  const auto status = client.wait_for_job(accepted->job, 5, 120000);
  EXPECT_EQ(status.state, JobState::kTimedOut);
  EXPECT_NE(status.error.find("deadline"), std::string::npos);

  server.request_shutdown(false);
  server.wait();
}

TEST(Serve, DeadlineExpiredJobStillServesArtifacts) {
  // Regression: a job cut down by its deadline (or cancelled) must still
  // retain its partial trace and metrics for kArtifact retrieval — the
  // observability of a failed run is worth the most.
  const TestPaths paths("dlart");
  ServerConfig config;
  config.socket_path = paths.socket;
  config.state_dir = paths.state;
  config.threads = 1;
  Server server(config);
  server.start();

  auto client = connect(paths);
  (void)client.upload_graph("big", graph_text(10200, 50));
  RunRequest req;
  req.graph = "big";
  req.timeout_ms = 1;
  const auto result = client.run(req);
  const auto* accepted = std::get_if<JobAcceptedReply>(&result);
  ASSERT_NE(accepted, nullptr);
  const auto status = client.wait_for_job(accepted->job, 5, 120000);
  ASSERT_EQ(status.state, JobState::kTimedOut);

  const auto trace = client.artifact(accepted->job, ArtifactKind::kTraceJsonl);
  EXPECT_FALSE(trace.text.empty());
  const auto metrics =
      client.artifact(accepted->job, ArtifactKind::kMetricsJson);
  EXPECT_FALSE(metrics.text.empty());

  server.request_shutdown(false);
  server.wait();
}

TEST(Serve, VerifyVerdictTravelsWithTheJobAndSurvivesRestart) {
  const TestPaths paths("verify");
  ServerConfig config;
  config.socket_path = paths.socket;
  config.state_dir = paths.state;
  config.threads = 1;
  Server server(config);
  server.start();

  auto client = connect(paths);
  (void)client.upload_graph("g1", graph_text(96, 5));

  RunRequest verified_req;
  verified_req.graph = "g1";
  verified_req.verify = true;
  const auto v_result = client.run(verified_req);
  const auto* v_accepted = std::get_if<JobAcceptedReply>(&v_result);
  ASSERT_NE(v_accepted, nullptr);
  const auto v_status = client.wait_for_job(v_accepted->job);
  EXPECT_EQ(v_status.state, JobState::kDone);
  EXPECT_EQ(v_status.verified, 1u);
  EXPECT_EQ(v_status.cert, "ok");

  RunRequest plain_req;
  plain_req.graph = "g1";
  const auto p_result = client.run(plain_req);
  const auto* p_accepted = std::get_if<JobAcceptedReply>(&p_result);
  ASSERT_NE(p_accepted, nullptr);
  const auto p_status = client.wait_for_job(p_accepted->job);
  EXPECT_EQ(p_status.state, JobState::kDone);
  EXPECT_EQ(p_status.verified, 0u);
  EXPECT_TRUE(p_status.cert.empty());

  const auto info = client.server_status();
  EXPECT_EQ(info.certified, 1u);
  EXPECT_EQ(info.cert_failed, 0u);

  server.request_shutdown(false);
  server.wait();

  // The verdict is durable in the WAL's kFinished record: a restarted
  // daemon must answer status queries with the same certification fields.
  Server next(config);
  next.start();
  auto client2 = connect(paths);
  const auto replayed = client2.status(v_accepted->job);
  EXPECT_EQ(replayed.state, JobState::kDone);
  EXPECT_EQ(replayed.verified, 1u);
  EXPECT_EQ(replayed.cert, "ok");
  const auto info2 = client2.server_status();
  EXPECT_EQ(info2.certified, 1u);
  next.request_shutdown(false);
  next.wait();
}

TEST(Serve, PoisonedJobIsQuarantinedWithoutHarmingNeighbors) {
  const TestPaths paths("poison");
  ServerConfig config;
  config.socket_path = paths.socket;
  config.state_dir = paths.state;
  config.threads = 1;
  Server server(config);
  server.start();

  auto client = connect(paths);
  (void)client.upload_graph("poison", graph_text(96, 5));
  (void)client.upload_graph("good", graph_text(96, 5));

  // Rot the stored graph on disk: activation must refuse the corrupt state
  // (the daemon treats its own state dir as untrusted) and quarantine the
  // job as kFailed instead of crashing or wedging the scheduler.
  {
    const std::string path = paths.state + "/graphs/poison.bin";
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 20, SEEK_SET);
    const char x = 0x5a;
    std::fwrite(&x, 1, 1, f);
    std::fclose(f);
  }

  RunRequest bad;
  bad.graph = "poison";
  const auto bad_result = client.run(bad);
  const auto* bad_accepted = std::get_if<JobAcceptedReply>(&bad_result);
  ASSERT_NE(bad_accepted, nullptr);
  const auto bad_status = client.wait_for_job(bad_accepted->job);
  EXPECT_EQ(bad_status.state, JobState::kFailed);
  EXPECT_FALSE(bad_status.error.empty());

  RunRequest good;
  good.graph = "good";
  const auto good_result = client.run(good);
  const auto* good_accepted = std::get_if<JobAcceptedReply>(&good_result);
  ASSERT_NE(good_accepted, nullptr);
  const auto good_status = client.wait_for_job(good_accepted->job);
  EXPECT_EQ(good_status.state, JobState::kDone);
  EXPECT_EQ(good_status.committed, 96u);

  server.request_shutdown(false);
  server.wait();
}

TEST(Serve, TwoSchedulerBackendsRunConcurrentlyWithDistinctLabels) {
  // One graph, two jobs in flight at once under different draw backends.
  // Both must finish, and each status reply must carry ITS job's scheduler
  // label — the label travels with the job, not the daemon.
  const TestPaths paths("twosched");
  ServerConfig config;
  config.socket_path = paths.socket;
  config.state_dir = paths.state;
  config.threads = 2;
  config.max_active = 2;
  Server server(config);
  server.start();

  auto client = connect(paths);
  (void)client.upload_graph("g1", graph_text(960, 5));

  RunRequest random_req;
  random_req.graph = "g1";
  random_req.seed = 5;
  const auto random_result = client.run(random_req);
  const auto* random_job = std::get_if<JobAcceptedReply>(&random_result);
  ASSERT_NE(random_job, nullptr);

  RunRequest chromatic_req;
  chromatic_req.graph = "g1";
  chromatic_req.seed = 5;
  chromatic_req.scheduler = "chromatic";
  const auto chromatic_result = client.run(chromatic_req);
  const auto* chromatic_job =
      std::get_if<JobAcceptedReply>(&chromatic_result);
  ASSERT_NE(chromatic_job, nullptr);

  const auto random_status =
      client.wait_for_job(random_job->job, 5, 120000);
  const auto chromatic_status =
      client.wait_for_job(chromatic_job->job, 5, 120000);
  EXPECT_EQ(random_status.state, JobState::kDone);
  EXPECT_EQ(chromatic_status.state, JobState::kDone);
  EXPECT_EQ(random_status.committed, 960u);
  EXPECT_EQ(chromatic_status.committed, 960u);
  EXPECT_EQ(random_status.scheduler, "random");
  EXPECT_EQ(chromatic_status.scheduler, "chromatic");

  server.request_shutdown(false);
  server.wait();
}

TEST(Serve, UnknownSchedulerIsRefusedAtSubmit) {
  const TestPaths paths("badsched");
  ServerConfig config;
  config.socket_path = paths.socket;
  config.state_dir = paths.state;
  config.threads = 1;
  Server server(config);
  server.start();

  auto client = connect(paths);
  (void)client.upload_graph("g1", graph_text(24, 5));
  RunRequest req;
  req.graph = "g1";
  req.scheduler = "round-robin";
  const auto result = client.run(req);
  const auto* err = std::get_if<ErrorReply>(&result);
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->code, ErrorCode::kBadRequest);
  EXPECT_NE(err->message.find("round-robin"), std::string::npos);
  EXPECT_EQ(client.health().message, "ok");

  server.request_shutdown(false);
  server.wait();
}

TEST(Serve, DrainShutdownFinishesQueuedJobsAndRefusesNewOnes) {
  const TestPaths paths("drain");
  ServerConfig config;
  config.socket_path = paths.socket;
  config.state_dir = paths.state;
  config.threads = 1;
  config.max_active = 1;
  Server server(config);
  server.start();

  auto client = connect(paths);
  (void)client.upload_graph("g1", graph_text(96, 5));
  std::vector<std::uint64_t> jobs;
  for (int i = 0; i < 3; ++i) {
    RunRequest req;
    req.graph = "g1";
    req.seed = static_cast<std::uint64_t>(i + 1);
    const auto result = client.run(req);
    const auto* accepted = std::get_if<JobAcceptedReply>(&result);
    ASSERT_NE(accepted, nullptr);
    jobs.push_back(accepted->job);
  }
  server.request_shutdown(/*drain=*/true);
  {
    RunRequest late;
    late.graph = "g1";
    const auto result = client.run(late);
    const auto* err = std::get_if<ErrorReply>(&result);
    ASSERT_NE(err, nullptr);
    EXPECT_EQ(err->code, ErrorCode::kShuttingDown);
  }
  server.wait();

  // Every pre-drain job finished: the next incarnation has nothing to
  // re-admit and remembers each terminal result from the WAL.
  Server second(config);
  second.start();
  EXPECT_EQ(second.recovered_jobs(), 0u);
  auto after = connect(paths);
  for (const std::uint64_t job : jobs) {
    const auto status = after.status(job);
    EXPECT_EQ(status.state, JobState::kDone) << "job " << job;
  }
  second.request_shutdown(false);
  second.wait();
}

TEST(Serve, ImmediateShutdownAbandonsThenResumesByteIdentically) {
  // The crash-recovery contract, in process: kill the daemon with a job
  // mid-run, restart on the same state dir, and the job must (a) be
  // re-admitted from the WAL, (b) resume from its forced checkpoint, and
  // (c) finish with per-round output byte-identical to the same spec run
  // uninterrupted at one lane.
  const TestPaths paths("resume");
  ServerConfig config;
  config.socket_path = paths.socket;
  config.state_dir = paths.state;
  config.threads = 1;
  config.checkpoint_every = 2;
  RunRequest req;
  req.graph = "big";
  req.seed = 21;

  std::uint64_t interrupted_job = 0;
  {
    Server server(config);
    server.start();
    auto client = connect(paths);
    (void)client.upload_graph("big", graph_text(10200, 50));
    const auto result = client.run(req);
    const auto* accepted = std::get_if<JobAcceptedReply>(&result);
    ASSERT_NE(accepted, nullptr);
    interrupted_job = accepted->job;
    const auto status = poll_until_running(client, interrupted_job);
    ASSERT_EQ(status.state, JobState::kRunning)
        << "job finished before the shutdown could interrupt it";
    server.request_shutdown(/*drain=*/false);
    server.wait();
  }

  Server server(config);
  server.start();
  EXPECT_EQ(server.recovered_jobs(), 1u);
  auto client = connect(paths);
  const auto resumed = client.wait_for_job(interrupted_job, 5, 120000);
  EXPECT_EQ(resumed.state, JobState::kDone);
  EXPECT_TRUE(resumed.resumed);
  EXPECT_EQ(resumed.committed, 10200u);
  const auto resumed_trace = client.trace(interrupted_job);

  // Uninterrupted reference: the identical spec as a fresh job.
  const auto ref_result = client.run(req);
  const auto* ref_accepted = std::get_if<JobAcceptedReply>(&ref_result);
  ASSERT_NE(ref_accepted, nullptr);
  const auto reference = client.wait_for_job(ref_accepted->job, 5, 120000);
  EXPECT_EQ(reference.state, JobState::kDone);
  EXPECT_FALSE(reference.resumed);
  const auto reference_trace = client.trace(ref_accepted->job);

  const auto got = round_lines(resumed_trace.text);
  const auto want = round_lines(reference_trace.text);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << "round " << i;
  }
  EXPECT_EQ(resumed.rounds, reference.rounds);
  EXPECT_EQ(resumed.committed, reference.committed);

  server.request_shutdown(false);
  server.wait();
}

}  // namespace
}  // namespace optipar::serve
