#include "apps/boruvka/boruvka.hpp"

#include <gtest/gtest.h>

#include "control/baselines.hpp"
#include "control/hybrid.hpp"
#include "graph/generators.hpp"
#include "graph/union_find.hpp"

namespace optipar::boruvka {
namespace {

std::vector<WeightedEdge> random_weighted_graph(NodeId n,
                                                std::uint64_t edges,
                                                std::uint64_t seed) {
  Rng rng(seed);
  const auto g = gen::gnm_random(n, edges, rng);
  std::vector<WeightedEdge> out;
  for (const auto& [u, v] : g.edges()) {
    out.push_back({u, v, rng.uniform() * 100.0 + 0.001});
  }
  return out;
}

TEST(Kruskal, KnownTinyGraph) {
  // Square with a diagonal: MST = 1 + 2 + 3.
  std::vector<WeightedEdge> edges = {
      {0, 1, 1.0}, {1, 2, 2.0}, {2, 3, 3.0}, {3, 0, 4.0}, {0, 2, 5.0}};
  EXPECT_DOUBLE_EQ(kruskal_mst_weight(4, edges), 6.0);
}

TEST(Kruskal, DisconnectedForest) {
  std::vector<WeightedEdge> edges = {{0, 1, 1.0}, {2, 3, 2.0}};
  EXPECT_DOUBLE_EQ(kruskal_mst_weight(5, edges), 3.0);
}

TEST(ContractionGraph, CollapsesParallelEdgesToLightest) {
  std::vector<WeightedEdge> edges = {{0, 1, 5.0}, {0, 1, 2.0}, {0, 1, 9.0}};
  ContractionGraph g(2, edges);
  const auto best = g.lightest_edge(0);
  ASSERT_TRUE(best.has_value());
  EXPECT_DOUBLE_EQ(best->w, 2.0);
}

TEST(ContractionGraph, LightestEdgeTieBreaksByNeighborId) {
  std::vector<WeightedEdge> edges = {{0, 2, 1.0}, {0, 1, 1.0}};
  ContractionGraph g(3, edges);
  const auto best = g.lightest_edge(0);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->v, 1u);
}

TEST(ContractionGraph, IsolatedNodeHasNoEdge) {
  ContractionGraph g(3, {});
  EXPECT_FALSE(g.lightest_edge(0).has_value());
}

TEST(ContractionGraph, RejectsBadEdges) {
  EXPECT_THROW((void)ContractionGraph(3, {{0, 0, 1.0}}), std::invalid_argument);
  EXPECT_THROW((void)ContractionGraph(3, {{0, 7, 1.0}}), std::invalid_argument);
}

class BoruvkaAdaptiveTest
    : public ::testing::TestWithParam<std::pair<NodeId, std::uint64_t>> {};

TEST_P(BoruvkaAdaptiveTest, MatchesKruskalWeight) {
  const auto [n, e] = GetParam();
  const auto edges = random_weighted_graph(n, e, 1000 + n);
  const double expected = kruskal_mst_weight(n, edges);

  ThreadPool pool(4);
  ControllerParams p;
  HybridController controller(p);
  const auto result =
      boruvka_adaptive(n, edges, controller, pool, /*seed=*/n * 7 + 1);

  EXPECT_NEAR(result.mst_weight, expected, 1e-6 * std::max(1.0, expected));
  EXPECT_GT(result.trace.total_committed(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BoruvkaAdaptiveTest,
                         ::testing::Values(std::pair{20u, 40ULL},
                                           std::pair{50u, 200ULL},
                                           std::pair{100u, 300ULL},
                                           std::pair{200u, 1000ULL}));

TEST(BoruvkaAdaptive, DisconnectedGraphBuildsForest) {
  // Two components: {0,1,2} path and {3,4} edge.
  std::vector<WeightedEdge> edges = {
      {0, 1, 1.0}, {1, 2, 2.0}, {3, 4, 7.0}};
  ThreadPool pool(2);
  ControllerParams p;
  HybridController controller(p);
  const auto result = boruvka_adaptive(5, edges, controller, pool, 5);
  EXPECT_DOUBLE_EQ(result.mst_weight, 10.0);
  EXPECT_EQ(result.edges_chosen, 3u);  // n − #components = 5 − 2
}

TEST(BoruvkaAdaptive, EdgelessGraphChoosesNothing) {
  ThreadPool pool(2);
  ControllerParams p;
  HybridController controller(p);
  const auto result = boruvka_adaptive(6, {}, controller, pool, 6);
  EXPECT_DOUBLE_EQ(result.mst_weight, 0.0);
  EXPECT_EQ(result.edges_chosen, 0u);
}

TEST(BoruvkaAdaptive, FixedControllerAlsoCorrect) {
  const auto edges = random_weighted_graph(80, 240, 77);
  const double expected = kruskal_mst_weight(80, edges);
  ThreadPool pool(4);
  FixedController controller(16);
  const auto result = boruvka_adaptive(80, edges, controller, pool, 9);
  EXPECT_NEAR(result.mst_weight, expected, 1e-6 * expected);
}

TEST(BoruvkaAdaptive, EdgesChosenEqualsNodesMinusComponents) {
  const auto edges = random_weighted_graph(60, 120, 88);
  // Count components via Kruskal's union-find side effect: recompute here.
  ThreadPool pool(2);
  ControllerParams p;
  HybridController controller(p);
  const auto result = boruvka_adaptive(60, edges, controller, pool, 10);
  // Derive component count from edges with a fresh union-find.
  UnionFind uf(60);
  for (const auto& e : edges) uf.unite(e.u, e.v);
  EXPECT_EQ(result.edges_chosen, 60u - uf.num_sets());
}

}  // namespace
}  // namespace optipar::boruvka
