#include "graph/dynamic_graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "graph/generators.hpp"

namespace optipar {
namespace {

TEST(DynamicGraph, StartsWithIsolatedAliveNodes) {
  DynamicGraph g(4);
  EXPECT_EQ(g.num_alive(), 4u);
  EXPECT_EQ(g.num_edges(), 0u);
  for (NodeId v = 0; v < 4; ++v) {
    EXPECT_TRUE(g.is_alive(v));
    EXPECT_EQ(g.degree(v), 0u);
  }
  EXPECT_TRUE(g.validate());
}

TEST(DynamicGraph, AddEdgeIsSymmetricAndIdempotent) {
  DynamicGraph g(3);
  EXPECT_TRUE(g.add_edge(0, 1));
  EXPECT_FALSE(g.add_edge(1, 0));  // duplicate
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.validate());
}

TEST(DynamicGraph, AddEdgeErrors) {
  DynamicGraph g(3);
  EXPECT_THROW((void)g.add_edge(0, 0), std::invalid_argument);
  g.remove_node(2);
  EXPECT_THROW((void)g.add_edge(0, 2), std::invalid_argument);
}

TEST(DynamicGraph, RemoveEdge) {
  DynamicGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_TRUE(g.remove_edge(0, 1));
  EXPECT_FALSE(g.remove_edge(0, 1));  // gone
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_TRUE(g.validate());
}

TEST(DynamicGraph, RemoveNodeDetachesEverything) {
  DynamicGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  g.add_edge(1, 2);
  g.remove_node(0);
  EXPECT_EQ(g.num_alive(), 3u);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_FALSE(g.is_alive(0));
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_TRUE(g.validate());
  EXPECT_THROW((void)g.remove_node(0), std::invalid_argument);
  EXPECT_THROW((void)g.degree(0), std::invalid_argument);
  EXPECT_THROW((void)g.neighbors(0), std::invalid_argument);
}

TEST(DynamicGraph, AddNodeGetsNewId) {
  DynamicGraph g(2);
  const NodeId v = g.add_node();
  EXPECT_EQ(v, 2u);
  EXPECT_EQ(g.num_alive(), 3u);
  g.add_edge(v, 0);
  EXPECT_TRUE(g.has_edge(2, 0));
  EXPECT_TRUE(g.validate());
}

TEST(DynamicGraph, IdsAreNeverReused) {
  DynamicGraph g(2);
  g.remove_node(1);
  const NodeId v = g.add_node();
  EXPECT_EQ(v, 2u);
  EXPECT_FALSE(g.is_alive(1));
  EXPECT_EQ(g.capacity(), 3u);
}

TEST(DynamicGraph, ImportFromCsrPreservesStructure) {
  Rng rng(5);
  const auto csr = gen::gnm_random(50, 120, rng);
  DynamicGraph g(csr);
  EXPECT_EQ(g.num_alive(), 50u);
  EXPECT_EQ(g.num_edges(), 120u);
  EXPECT_DOUBLE_EQ(g.average_degree(), csr.average_degree());
  for (NodeId v = 0; v < 50; ++v) {
    EXPECT_EQ(g.degree(v), csr.degree(v));
  }
  EXPECT_TRUE(g.validate());
}

TEST(DynamicGraph, FreezeRelabelsCompactly) {
  DynamicGraph g(5);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.remove_node(1);
  std::vector<NodeId> relabel;
  const auto frozen = g.freeze(&relabel);
  EXPECT_EQ(frozen.num_nodes(), 4u);
  EXPECT_EQ(frozen.num_edges(), 2u);
  EXPECT_EQ(relabel[1], UINT32_MAX);
  EXPECT_TRUE(frozen.has_edge(relabel[2], relabel[3]));
  EXPECT_TRUE(frozen.has_edge(relabel[3], relabel[4]));
  EXPECT_TRUE(frozen.validate());
}

TEST(DynamicGraph, AliveNodesListsExactlySurvivors) {
  DynamicGraph g(5);
  g.remove_node(0);
  g.remove_node(3);
  const auto alive = g.alive_nodes();
  EXPECT_EQ(alive, (std::vector<NodeId>{1, 2, 4}));
}

TEST(DynamicGraph, AverageDegreeTracksMutations) {
  DynamicGraph g(4);
  EXPECT_DOUBLE_EQ(g.average_degree(), 0.0);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_DOUBLE_EQ(g.average_degree(), 1.0);
  g.remove_node(0);
  EXPECT_NEAR(g.average_degree(), 2.0 / 3.0, 1e-12);
}

TEST(DynamicGraph, StressMutationsKeepInvariants) {
  Rng rng(99);
  DynamicGraph g(gen::gnm_random(60, 150, rng));
  for (int step = 0; step < 400; ++step) {
    const auto alive = g.alive_nodes();
    if (alive.size() < 2) break;
    const NodeId a = alive[rng.below(alive.size())];
    const NodeId b = alive[rng.below(alive.size())];
    switch (rng.below(4)) {
      case 0:
        if (a != b) g.add_edge(a, b);
        break;
      case 1:
        g.remove_edge(a, b);
        break;
      case 2:
        g.remove_node(a);
        break;
      default:
        g.add_node();
        break;
    }
  }
  EXPECT_TRUE(g.validate());
}

}  // namespace
}  // namespace optipar
