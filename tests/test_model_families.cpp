// Cross-family coverage of the model estimators: the conflict-ratio curve
// and its invariants on every generator family the repository ships,
// including the closed forms from exact.hpp evaluated at scale.
#include <gtest/gtest.h>

#include "graph/algos.hpp"
#include "graph/generators.hpp"
#include "model/conflict_ratio.hpp"
#include "model/exact.hpp"
#include "model/theory.hpp"

namespace optipar {
namespace {

struct FamilyCase {
  std::string name;
  CsrGraph graph;
};

std::vector<FamilyCase> families() {
  Rng rng(31);
  std::vector<FamilyCase> f;
  f.push_back({"gnm", gen::gnm_random(150, 600, rng)});
  f.push_back({"gnp", gen::gnp_random(150, 0.05, rng)});
  f.push_back({"regular", gen::random_regular(150, 6, rng)});
  f.push_back({"torus", gen::torus_2d(12, 12)});
  f.push_back({"grid", gen::grid_2d(12, 12)});
  f.push_back({"rmat", gen::rmat(150, 600, 0.5, 0.2, 0.2, rng)});
  f.push_back({"ba", gen::barabasi_albert(150, 3, rng)});
  f.push_back({"cliques", gen::union_of_cliques(150, 5)});
  f.push_back({"path", gen::path(150)});
  f.push_back({"star", gen::star(149)});
  return f;
}

class FamilyCurveTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FamilyCurveTest, CurveInvariantsHold) {
  auto cases = families();
  auto& c = cases[GetParam()];
  const NodeId n = c.graph.num_nodes();
  Rng rng(100 + GetParam());
  const auto curve = estimate_conflict_curve(c.graph, 1500, rng);

  // r̄(1) = 0 exactly; r̄ in [0, 1); committed + aborted = m.
  EXPECT_EQ(curve.r_bar(1), 0.0) << c.name;
  for (const std::uint32_t m : {1u, n / 4, n / 2, n}) {
    if (m == 0) continue;
    EXPECT_GE(curve.r_bar(m), 0.0) << c.name;
    EXPECT_LT(curve.r_bar(m), 1.0) << c.name;
    EXPECT_NEAR(curve.expected_committed(m) + curve.k_bar(m), m, 1e-9)
        << c.name;
  }
  // Prop. 1 within noise at a few spot pairs.
  EXPECT_GE(curve.r_bar(n) + 0.02, curve.r_bar(n / 2)) << c.name;
  EXPECT_GE(curve.r_bar(n / 2) + 0.02, curve.r_bar(n / 4)) << c.name;
  // EM_m(G) >= b_m(G) (Thm. 2's first inequality) at m = n/2.
  EXPECT_GE(curve.expected_committed(n / 2) + 0.5,
            theory::b_m(c.graph, n / 2))
      << c.name;
  // Full-launch committed == E[greedy MIS] >= Turán.
  EXPECT_GE(curve.expected_committed(n) + 0.5,
            theory::turan_bound(n, c.graph.average_degree()))
      << c.name;
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, FamilyCurveTest,
                         ::testing::Range<std::size_t>(0, 10));

TEST(ClosedForms, StarAtScaleMatchesMonteCarlo) {
  const std::uint32_t leaves = 400;
  const auto g = gen::star(leaves);
  Rng rng(7);
  const auto curve = estimate_conflict_curve(g, 4000, rng);
  for (const std::uint32_t m : {2u, 10u, 100u, 401u}) {
    EXPECT_NEAR(curve.k_bar(m), exact::star_k_bar(leaves, m),
                4 * curve.abort_stats[m].ci95() + 1e-6)
        << "m=" << m;
  }
}

TEST(ClosedForms, CompleteAtScaleIsExact) {
  const auto g = gen::complete(60);
  Rng rng(8);
  const auto curve = estimate_conflict_curve(g, 50, rng);
  for (std::uint32_t m = 1; m <= 60; ++m) {
    EXPECT_DOUBLE_EQ(curve.k_bar(m), exact::complete_k_bar(60, m));
  }
}

TEST(ClosedForms, StarRBarSaturatesAtTwoOverN) {
  // r̄(m) = 2(m−1)/(n·m) -> 2/n: the star never exceeds ~2 conflicts.
  const std::uint32_t leaves = 999;
  const double limit = 2.0 / (leaves + 1);
  EXPECT_NEAR(exact::star_k_bar(leaves, 1000) / 1000.0, limit, 1e-5);
}

TEST(FamilyMu, DenserFamiliesHaveSmallerMu) {
  Rng rng(9);
  const auto sparse = gen::random_with_average_degree(400, 4, rng);
  const auto dense = gen::random_with_average_degree(400, 32, rng);
  const auto mu_sparse = find_mu(sparse, 0.25, 800, rng);
  const auto mu_dense = find_mu(dense, 0.25, 800, rng);
  EXPECT_GT(mu_sparse, 3 * mu_dense);
}

}  // namespace
}  // namespace optipar
