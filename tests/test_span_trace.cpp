// Span collector + Chrome export (DESIGN.md §15) and EventRing concurrency.
//
// The export tests hold export_chrome to the strict trace-event contract
// scripts/check_trace.py enforces in CI: every B has a matching E on its
// (pid, tid) with the same name in stack order, timestamps are
// nondecreasing, and malformed recordings (orphan spans, out-of-order
// closes, children overlapping their parent) are REPAIRED, not emitted
// verbatim. The EventRing tests pin the drop-oldest wrap accounting and the
// cross-thread push/drain handshake the per-lane rings rely on.
#include <atomic>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "support/telemetry/span_trace.hpp"
#include "support/telemetry/telemetry.hpp"

namespace optipar::telemetry {
namespace {

struct ParsedEvent {
  char ph = '?';
  std::uint32_t tid = 0;
  std::string name;
  double ts = 0.0;
};

/// Minimal line-oriented parse of export_chrome output: one event per
/// line after the header; extract ph / tid / name / ts with string finds.
std::vector<ParsedEvent> parse_events(const std::string& doc) {
  std::vector<ParsedEvent> out;
  std::istringstream is(doc);
  std::string line;
  while (std::getline(is, line)) {
    const auto ph_pos = line.find("\"ph\":\"");
    if (ph_pos == std::string::npos) continue;
    ParsedEvent ev;
    ev.ph = line[ph_pos + 6];
    const auto name_pos = line.find("\"name\":\"");
    const auto name_end = line.find('"', name_pos + 8);
    ev.name = line.substr(name_pos + 8, name_end - name_pos - 8);
    const auto tid_pos = line.find("\"tid\":");
    ev.tid = static_cast<std::uint32_t>(
        std::stoul(line.substr(tid_pos + 6)));
    const auto ts_pos = line.find("\"ts\":");
    if (ts_pos != std::string::npos) {
      ev.ts = std::stod(line.substr(ts_pos + 5));
    }
    out.push_back(std::move(ev));
  }
  return out;
}

std::string export_str(const SpanCollector& spans) {
  std::ostringstream os;
  spans.export_chrome(os);
  return os.str();
}

/// The invariant check_trace.py applies: per-tid B/E stack discipline with
/// name matching, and globally nondecreasing timestamps (M events aside).
void expect_well_formed(const std::string& doc) {
  const auto events = parse_events(doc);
  std::map<std::uint32_t, std::vector<std::string>> stacks;
  double last_ts = -1.0;
  for (const ParsedEvent& ev : events) {
    if (ev.ph == 'M') continue;
    EXPECT_GE(ev.ts, last_ts) << "timestamps must be nondecreasing";
    last_ts = ev.ts;
    if (ev.ph == 'B') {
      stacks[ev.tid].push_back(ev.name);
    } else if (ev.ph == 'E') {
      auto& stack = stacks[ev.tid];
      ASSERT_FALSE(stack.empty()) << "E without open B on tid " << ev.tid;
      EXPECT_EQ(stack.back(), ev.name) << "E closes the wrong span";
      stack.pop_back();
    }
  }
  for (const auto& [tid, stack] : stacks) {
    EXPECT_TRUE(stack.empty()) << "unclosed span on tid " << tid;
  }
}

TEST(SpanCollector, NestedSpansExportBalanced) {
  SpanCollector spans(7);
  const auto outer = spans.begin("job", 0, 7, 0);
  const auto inner = spans.begin("round", 0, 1, 32);
  spans.instant("deadline", 0, 5);
  spans.end(inner);
  spans.end(outer);

  const std::string doc = export_str(spans);
  EXPECT_NE(doc.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(doc.find("\"pid\":7"), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"deadline\""), std::string::npos);
  expect_well_formed(doc);
}

TEST(SpanCollector, OrphanSpanIsClosedAtTraceEnd) {
  SpanCollector spans;
  const auto outer = spans.begin("job", 0);
  (void)spans.begin("round", 0);  // never ended: a throw unwound past it
  spans.end(outer);
  expect_well_formed(export_str(spans));
}

TEST(SpanCollector, OutOfOrderCloseIsRepaired) {
  SpanCollector spans;
  const auto outer = spans.begin("outer", 0);
  const auto inner = spans.begin("inner", 0);
  spans.end(outer);  // parent closed before the child
  spans.end(inner);
  expect_well_formed(export_str(spans));
}

TEST(SpanCollector, ChildOverlappingParentIsClamped) {
  SpanCollector spans;
  SpanRecord parent;
  parent.name = "parent";
  parent.start_ns = 100000;
  parent.end_ns = 200000;
  spans.record(parent);
  SpanRecord child;
  child.name = "child";
  child.start_ns = 150000;
  child.end_ns = 300000;  // extends past the parent
  spans.record(child);

  const std::string doc = export_str(spans);
  expect_well_formed(doc);
  // base is 100000 ns; an unclamped child E would sit at ts 200.000 µs.
  EXPECT_EQ(doc.find("\"ts\":200.000"), std::string::npos)
      << "child end must be clamped into the parent interval";
  EXPECT_NE(doc.find("\"ts\":100.000"), std::string::npos);
}

TEST(SpanCollector, EndToleratesBogusHandlesAndDoubleEnd) {
  SpanCollector spans;
  const auto h = spans.begin("span", 0);
  spans.end(h);
  spans.end(h);      // double end: ignored
  spans.end(12345);  // out of range: ignored
  EXPECT_EQ(spans.size(), 1u);
  expect_well_formed(export_str(spans));
}

TEST(SpanCollector, LaneBuffersExportUnderTheirTids) {
  SpanCollector spans;
  spans.ensure_lanes(2);
  SpanRecord rec;
  rec.name = "exec";
  rec.tid = 1;
  rec.start_ns = 1000;
  rec.end_ns = 2000;
  spans.lane(0).push(rec);
  rec.name = "draw";
  rec.tid = 2;
  spans.lane(1).push(rec);

  const std::string doc = export_str(spans);
  expect_well_formed(doc);
  EXPECT_NE(doc.find("\"name\":\"lane 0\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"lane 1\""), std::string::npos);
  EXPECT_EQ(spans.size(), 2u);
}

TEST(SpanCollector, EmptyCollectorExportsValidDocument) {
  SpanCollector spans;
  const std::string doc = export_str(spans);
  EXPECT_NE(doc.find("\"traceEvents\":["), std::string::npos);
  expect_well_formed(doc);
}

TEST(SpanScope, NullCollectorIsNoOp) {
  SpanScope scope(nullptr, "round", 0);
  scope.close();  // must not crash
}

TEST(SpanScope, RecordsOnScopeExit) {
  SpanCollector spans;
  {
    SpanScope scope(&spans, "round", 0, 3, 64);
  }
  EXPECT_EQ(spans.size(), 1u);
  expect_well_formed(export_str(spans));
}

// ---------------------------------------------------------------------------
// EventRing
// ---------------------------------------------------------------------------

TEST(EventRing, CapacityRoundsUpToPowerOfTwo) {
  EventRing ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
  EventRing tiny(0);
  EXPECT_EQ(tiny.capacity(), 8u);
}

TEST(EventRing, WrapDropsOldestAndCountsDrops) {
  EventRing ring(8);
  for (std::uint64_t i = 0; i < 20; ++i) {
    TraceEvent ev;
    ev.a = i;
    ring.push(std::move(ev));
  }
  EXPECT_EQ(ring.size(), 8u);
  EXPECT_EQ(ring.dropped(), 12u);
  std::vector<TraceEvent> out;
  ring.drain(out);
  ASSERT_EQ(out.size(), 8u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].a, 12 + i) << "drain must yield oldest-first";
  }
  EXPECT_EQ(ring.size(), 0u);
}

TEST(EventRing, CrossThreadPushThenQuiescentDrain) {
  // The per-lane contract: one producer pushes during a round; the
  // coordinator drains only at quiescent points. Handshake per burst, then
  // verify nothing was lost or reordered: drained + dropped == pushed and
  // every drained burst is strictly ascending.
  constexpr std::uint64_t kBursts = 50;
  constexpr std::uint64_t kPerBurst = 100;  // wraps a 64-slot ring
  EventRing ring(64);
  std::atomic<bool> burst_done{false};
  std::atomic<bool> continue_burst{true};
  std::uint64_t next = 0;

  std::thread producer([&] {
    for (std::uint64_t b = 0; b < kBursts; ++b) {
      for (std::uint64_t i = 0; i < kPerBurst; ++i) {
        TraceEvent ev;
        ev.a = next++;
        ring.push(std::move(ev));
      }
      burst_done.store(true, std::memory_order_release);
      while (burst_done.load(std::memory_order_acquire)) {
        if (!continue_burst.load(std::memory_order_acquire)) return;
        std::this_thread::yield();
      }
    }
  });

  std::uint64_t drained = 0;
  std::uint64_t last_seen = 0;
  bool first = true;
  for (std::uint64_t b = 0; b < kBursts; ++b) {
    while (!burst_done.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    std::vector<TraceEvent> out;
    ring.drain(out);
    drained += out.size();
    for (const TraceEvent& ev : out) {
      if (!first) {
        EXPECT_GT(ev.a, last_seen) << "drained events must stay ordered";
      }
      first = false;
      last_seen = ev.a;
    }
    burst_done.store(false, std::memory_order_release);
  }
  continue_burst.store(false, std::memory_order_release);
  producer.join();

  EXPECT_EQ(drained + ring.dropped(), kBursts * kPerBurst);
  EXPECT_LE(ring.size(), ring.capacity());
}

}  // namespace
}  // namespace optipar::telemetry
