#include "support/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "support/rng.hpp"

namespace optipar {
namespace {

TEST(StreamingStats, EmptyDefaults) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.sem(), 0.0);
}

TEST(StreamingStats, MeanAndVarianceMatchDirectFormulas) {
  const std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  StreamingStats s;
  for (const double x : xs) s.add(x);
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with Bessel correction: 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(StreamingStats, SingleSampleHasZeroVariance) {
  StreamingStats s;
  s.add(3.14);
  EXPECT_DOUBLE_EQ(s.mean(), 3.14);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(StreamingStats, MergeEqualsSequential) {
  Rng rng(99);
  StreamingStats whole;
  StreamingStats a;
  StreamingStats b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform() * 10 - 5;
    whole.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(StreamingStats, MergeWithEmptyIsNoop) {
  StreamingStats a;
  a.add(1.0);
  a.add(2.0);
  StreamingStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 1.5);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(StreamingStats, Ci95ShrinksWithSamples) {
  StreamingStats small;
  StreamingStats large;
  Rng rng(7);
  for (int i = 0; i < 10; ++i) small.add(rng.uniform());
  for (int i = 0; i < 10000; ++i) large.add(rng.uniform());
  EXPECT_GT(small.ci95(), large.ci95());
}

TEST(Ewma, ConstantInputConvergesToConstant) {
  Ewma e(0.3);
  for (int i = 0; i < 50; ++i) e.add(4.2);
  EXPECT_NEAR(e.value(), 4.2, 1e-9);
}

TEST(Ewma, BiasCorrectionMakesFirstSampleExact) {
  Ewma e(0.1);
  e.add(10.0);
  EXPECT_NEAR(e.value(), 10.0, 1e-12);
}

TEST(Ewma, TracksStepChange) {
  Ewma e(0.5);
  for (int i = 0; i < 20; ++i) e.add(0.0);
  for (int i = 0; i < 20; ++i) e.add(1.0);
  EXPECT_GT(e.value(), 0.99);
}

TEST(Ewma, ResetClears) {
  Ewma e(0.5);
  e.add(5.0);
  e.reset();
  EXPECT_TRUE(e.empty());
  EXPECT_EQ(e.value(), 0.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW((void)Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW((void)Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);    // bin 0
  h.add(9.5);    // bin 9
  h.add(-100);   // clamps to bin 0
  h.add(100);    // clamps to bin 9
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 2u);
  for (std::size_t b = 1; b < 9; ++b) EXPECT_EQ(h.count(b), 0u);
}

TEST(Histogram, QuantileOfUniformData) {
  Histogram h(0.0, 1.0, 100);
  Rng rng(3);
  for (int i = 0; i < 100000; ++i) h.add(rng.uniform());
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(h.quantile(0.9), 0.9, 0.02);
  EXPECT_NEAR(h.quantile(0.1), 0.1, 0.02);
}

TEST(Histogram, QuantileOnEmptyThrows) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_THROW((void)h.quantile(0.5), std::logic_error);
}

TEST(Histogram, AsciiHasOneCharPerBinUpToWidth) {
  Histogram h(0.0, 1.0, 8);
  h.add(0.1);
  EXPECT_EQ(h.ascii(40).size(), 8u);
  EXPECT_EQ(h.ascii(4).size(), 4u);
}

}  // namespace
}  // namespace optipar
