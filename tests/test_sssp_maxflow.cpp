#include <gtest/gtest.h>

#include "apps/maxflow/maxflow.hpp"
#include "apps/sssp/sssp.hpp"
#include "control/baselines.hpp"
#include "control/hybrid.hpp"
#include "graph/generators.hpp"

namespace optipar {
namespace {

// ------------------------------------------------------- weighted graph

TEST(WeightedGraph, BuildAndAccess) {
  std::vector<WeightedEdgeTriple> edges = {{0, 1, 2.5}, {1, 2, 1.0}};
  const auto g = WeightedGraph::from_edges(3, edges);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.arcs(0).size(), 1u);
  EXPECT_EQ(g.arcs(0)[0].to, 1u);
  EXPECT_DOUBLE_EQ(g.arcs(0)[0].weight, 2.5);
}

TEST(WeightedGraph, DuplicatesKeepLightest) {
  std::vector<WeightedEdgeTriple> edges = {{0, 1, 5.0}, {1, 0, 2.0}};
  const auto g = WeightedGraph::from_edges(2, edges);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(g.arcs(0)[0].weight, 2.0);
}

TEST(WeightedGraph, RejectsBadInput) {
  EXPECT_THROW((void)WeightedGraph::from_edges(2, {{0, 0, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW((void)WeightedGraph::from_edges(2, {{0, 5, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW((void)WeightedGraph::from_edges(
                   2, {{0, 1, std::numeric_limits<double>::infinity()}}),
               std::invalid_argument);
}

TEST(WeightedGraph, StructureMatches) {
  std::vector<WeightedEdgeTriple> edges = {{0, 1, 1.0}, {1, 2, 2.0}};
  const auto g = WeightedGraph::from_edges(4, edges);
  const auto s = g.structure();
  EXPECT_EQ(s.num_nodes(), 4u);
  EXPECT_TRUE(s.has_edge(0, 1));
  EXPECT_TRUE(s.has_edge(1, 2));
  EXPECT_FALSE(s.has_edge(0, 2));
}

// ----------------------------------------------------------------- sssp

WeightedGraph random_weighted(NodeId n, double degree, std::uint64_t seed) {
  Rng rng(seed);
  const auto skeleton = gen::random_with_average_degree(n, degree, rng);
  std::vector<WeightedEdgeTriple> edges;
  for (const auto& [u, v] : skeleton.edges()) {
    edges.push_back({u, v, rng.uniform() * 10.0 + 0.01});
  }
  return WeightedGraph::from_edges(n, edges);
}

TEST(Dijkstra, TinyKnownGraph) {
  std::vector<WeightedEdgeTriple> edges = {
      {0, 1, 1.0}, {1, 2, 1.0}, {0, 2, 5.0}, {2, 3, 1.0}};
  const auto g = WeightedGraph::from_edges(5, edges);
  const auto dist = sssp::dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(dist[0], 0.0);
  EXPECT_DOUBLE_EQ(dist[1], 1.0);
  EXPECT_DOUBLE_EQ(dist[2], 2.0);
  EXPECT_DOUBLE_EQ(dist[3], 3.0);
  EXPECT_EQ(dist[4], sssp::kUnreachable);
}

TEST(Dijkstra, RejectsBadInput) {
  const auto g = WeightedGraph::from_edges(2, {{0, 1, 1.0}});
  EXPECT_THROW((void)sssp::dijkstra(g, 5), std::invalid_argument);
  const auto neg = WeightedGraph::from_edges(2, {{0, 1, -1.0}});
  EXPECT_THROW((void)sssp::dijkstra(neg, 0), std::invalid_argument);
}

class SsspAdaptiveTest : public ::testing::TestWithParam<NodeId> {};

TEST_P(SsspAdaptiveTest, MatchesDijkstraExactly) {
  const NodeId n = GetParam();
  const auto g = random_weighted(n, 6.0, 100 + n);
  const auto reference = sssp::dijkstra(g, 0);

  ThreadPool pool(4);
  ControllerParams p;
  HybridController controller(p);
  const auto result = sssp::sssp_adaptive(g, 0, controller, pool, n + 1);
  ASSERT_EQ(result.dist.size(), reference.size());
  for (NodeId v = 0; v < n; ++v) {
    if (reference[v] == sssp::kUnreachable) {
      EXPECT_EQ(result.dist[v], sssp::kUnreachable) << "v=" << v;
    } else {
      EXPECT_NEAR(result.dist[v], reference[v], 1e-9) << "v=" << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SsspAdaptiveTest,
                         ::testing::Values(20u, 100u, 400u));

TEST(SsspAdaptive, FixedControllerAlsoCorrect) {
  const auto g = random_weighted(150, 8.0, 7);
  const auto reference = sssp::dijkstra(g, 3);
  ThreadPool pool(2);
  FixedController controller(16);
  const auto result = sssp::sssp_adaptive(g, 3, controller, pool, 8);
  for (NodeId v = 0; v < 150; ++v) {
    if (reference[v] != sssp::kUnreachable) {
      EXPECT_NEAR(result.dist[v], reference[v], 1e-9);
    }
  }
}

TEST(SsspPriorityAdaptive, MatchesDijkstraExactly) {
  const auto g = random_weighted(200, 7.0, 17);
  const auto reference = sssp::dijkstra(g, 0);
  ThreadPool pool(4);
  ControllerParams p;
  HybridController controller(p);
  const auto result = sssp::sssp_priority_adaptive(g, 0, controller, pool,
                                                   18);
  for (NodeId v = 0; v < 200; ++v) {
    if (reference[v] == sssp::kUnreachable) {
      EXPECT_EQ(result.dist[v], sssp::kUnreachable);
    } else {
      EXPECT_NEAR(result.dist[v], reference[v], 1e-9);
    }
  }
}

TEST(SsspPriorityAdaptive, CommitsNoMoreRelaxationsThanRandomOrder) {
  // Relaxing near-source nodes first is Dijkstra-like: each node settles
  // with few re-relaxations, so the total committed work is smaller than
  // under uniformly random selection (usually much smaller).
  const auto g = random_weighted(400, 8.0, 19);
  ThreadPool pool(4);
  ControllerParams p;
  HybridController c1(p);
  const auto random_order = sssp::sssp_adaptive(g, 0, c1, pool, 20);
  HybridController c2(p);
  const auto priority_order =
      sssp::sssp_priority_adaptive(g, 0, c2, pool, 20);
  EXPECT_LE(priority_order.trace.total_committed(),
            random_order.trace.total_committed());
}

TEST(SsspAdaptive, DisconnectedNodesStayUnreachable) {
  const auto g = WeightedGraph::from_edges(6, {{0, 1, 1.0}, {1, 2, 1.0}});
  ThreadPool pool(2);
  ControllerParams p;
  HybridController controller(p);
  const auto result = sssp::sssp_adaptive(g, 0, controller, pool, 9);
  EXPECT_EQ(result.dist[4], sssp::kUnreachable);
  EXPECT_EQ(result.dist[5], sssp::kUnreachable);
}

// -------------------------------------------------------------- maxflow

maxflow::FlowNetwork diamond() {
  // s=0, t=3: two length-2 paths with caps (3,2) and (2,3), plus a cross
  // arc 1->2 of cap 1. Max flow = 5.
  maxflow::FlowNetwork net(4);
  net.add_arc(0, 1, 3);
  net.add_arc(0, 2, 2);
  net.add_arc(1, 3, 2);
  net.add_arc(2, 3, 3);
  net.add_arc(1, 2, 1);
  return net;
}

TEST(FlowNetwork, ArcBookkeeping) {
  auto net = diamond();
  EXPECT_EQ(net.num_nodes(), 4u);
  EXPECT_EQ(net.arcs(0).size(), 2u);
  EXPECT_EQ(net.arcs(1).size(), 3u);  // rev of 0->1, fwd 1->3, fwd 1->2
  net.push(0, 0, 2.0);
  EXPECT_DOUBLE_EQ(net.arcs(0)[0].flow, 2.0);
  EXPECT_DOUBLE_EQ(net.arcs(0)[0].residual(), 1.0);
  // Reverse arc gained residual.
  const auto& fwd = net.arcs(0)[0];
  EXPECT_DOUBLE_EQ(net.arcs(fwd.rev_node)[fwd.rev_index].residual(), 2.0);
  net.reset_flow();
  EXPECT_DOUBLE_EQ(net.arcs(0)[0].flow, 0.0);
}

TEST(FlowNetwork, AddArcValidation) {
  maxflow::FlowNetwork net(3);
  EXPECT_THROW((void)net.add_arc(0, 0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)net.add_arc(0, 9, 1.0), std::invalid_argument);
  EXPECT_THROW((void)net.add_arc(0, 1, -2.0), std::invalid_argument);
}

TEST(EdmondsKarp, DiamondIsFive) {
  EXPECT_DOUBLE_EQ(maxflow::edmonds_karp(diamond(), 0, 3), 5.0);
}

TEST(EdmondsKarp, DisconnectedIsZero) {
  maxflow::FlowNetwork net(4);
  net.add_arc(0, 1, 7);
  EXPECT_DOUBLE_EQ(maxflow::edmonds_karp(net, 0, 3), 0.0);
}

TEST(MaxflowAdaptive, DiamondMatches) {
  auto net = diamond();
  ThreadPool pool(2);
  ControllerParams p;
  HybridController controller(p);
  const auto result = maxflow::maxflow_adaptive(net, 0, 3, controller, pool,
                                                11);
  EXPECT_DOUBLE_EQ(result.flow_value, 5.0);
  EXPECT_TRUE(result.feasible);
}

class MaxflowRandomTest : public ::testing::TestWithParam<NodeId> {};

TEST_P(MaxflowRandomTest, MatchesEdmondsKarpOnRandomNetworks) {
  const NodeId n = GetParam();
  Rng rng(500 + n);
  maxflow::FlowNetwork net(n);
  // Random DAG-ish network with integer capacities plus guaranteed
  // s-connectivity structure.
  for (NodeId v = 0; v + 1 < n; ++v) {
    net.add_arc(v, v + 1, static_cast<double>(1 + rng.below(8)));
  }
  const auto extra = static_cast<std::size_t>(n) * 3;
  for (std::size_t e = 0; e < extra; ++e) {
    const auto u = static_cast<NodeId>(rng.below(n));
    const auto v = static_cast<NodeId>(rng.below(n));
    if (u == v) continue;
    net.add_arc(u, v, static_cast<double>(1 + rng.below(12)));
  }
  const NodeId s = 0;
  const NodeId t = n - 1;
  const double reference = maxflow::edmonds_karp(net, s, t);

  ThreadPool pool(4);
  ControllerParams p;
  HybridController controller(p);
  const auto result =
      maxflow::maxflow_adaptive(net, s, t, controller, pool, n * 3 + 1);
  EXPECT_DOUBLE_EQ(result.flow_value, reference);
  EXPECT_TRUE(result.feasible);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MaxflowRandomTest,
                         ::testing::Values(8u, 24u, 60u, 120u));

TEST(MaxflowAdaptive, FixedControllerAlsoCorrect) {
  auto net = diamond();
  ThreadPool pool(2);
  FixedController controller(4);
  const auto result =
      maxflow::maxflow_adaptive(net, 0, 3, controller, pool, 13);
  EXPECT_DOUBLE_EQ(result.flow_value, 5.0);
}

TEST(GlobalRelabel, HeightsBecomeValidDistanceLabels) {
  auto net = diamond();
  maxflow::PushRelabelState state(4, 0);
  maxflow::global_relabel(net, state, 0, 3);
  // With zero flow every arc is residual: heights = BFS distance to t.
  EXPECT_EQ(state.height(1), 1u);
  EXPECT_EQ(state.height(2), 1u);
  EXPECT_EQ(state.height(3), 0u);
  EXPECT_EQ(state.height(0), 4u);  // source untouched (n)
}

TEST(GlobalRelabel, NeverLowersHeights) {
  auto net = diamond();
  maxflow::PushRelabelState state(4, 0);
  state.set_height(1, 9);
  maxflow::global_relabel(net, state, 0, 3);
  EXPECT_EQ(state.height(1), 9u);
}

TEST(MaxflowAdaptive, CorrectWithoutGlobalRelabel) {
  auto net = diamond();
  ThreadPool pool(2);
  ControllerParams p;
  HybridController controller(p);
  const auto res = maxflow::maxflow_adaptive(net, 0, 3, controller, pool, 14,
                                             1000000, /*interval=*/0);
  EXPECT_DOUBLE_EQ(res.flow_value, 5.0);
}

TEST(MaxflowAdaptive, GlobalRelabelCutsRounds) {
  Rng rng(321);
  maxflow::FlowNetwork base(80);
  for (NodeId v = 0; v + 1 < 80; ++v) {
    base.add_arc(v, v + 1, static_cast<double>(1 + rng.below(6)));
  }
  for (int e = 0; e < 240; ++e) {
    const auto u = static_cast<NodeId>(rng.below(80));
    const auto v = static_cast<NodeId>(rng.below(80));
    if (u != v) base.add_arc(u, v, static_cast<double>(1 + rng.below(10)));
  }
  const double reference = maxflow::edmonds_karp(base, 0, 79);
  ThreadPool pool(2);

  auto run = [&](std::uint32_t interval) {
    maxflow::FlowNetwork net = base;
    net.reset_flow();
    ControllerParams p;
    HybridController c(p);
    return maxflow::maxflow_adaptive(net, 0, 79, c, pool, 15, 1000000,
                                     interval);
  };
  const auto with = run(32);
  const auto without = run(0);
  EXPECT_DOUBLE_EQ(with.flow_value, reference);
  EXPECT_DOUBLE_EQ(without.flow_value, reference);
  EXPECT_LT(with.trace.steps.size(), without.trace.steps.size());
}

TEST(MaxflowAdaptive, RejectsSourceEqualsSink) {
  auto net = diamond();
  ThreadPool pool(1);
  ControllerParams p;
  HybridController controller(p);
  EXPECT_THROW((void)maxflow::maxflow_adaptive(net, 1, 1, controller, pool, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace optipar
