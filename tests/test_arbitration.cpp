// Conflict-arbitration policies: abort-self (the paper's model) vs
// KDG-style priority-wins with cooperative poisoning.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "rt/spec_executor.hpp"
#include "support/barrier.hpp"
#include "support/thread_pool.hpp"

namespace optipar {
namespace {

TEST(PriorityWins, IndependentTasksAllCommit) {
  ThreadPool pool(4);
  std::atomic<int> commits{0};
  SpeculativeExecutor ex(
      pool, 32,
      [&](TaskId t, IterationContext& ctx) {
        ctx.acquire(static_cast<std::uint32_t>(t));
        commits.fetch_add(1);
      },
      1, WorklistPolicy::kRandom, ArbitrationPolicy::kPriorityWins);
  std::vector<TaskId> tasks(32);
  std::iota(tasks.begin(), tasks.end(), TaskId{0});
  ex.push_initial(tasks);
  while (!ex.done()) (void)ex.run_round(32);
  EXPECT_EQ(commits.load(), 32);
  EXPECT_TRUE(ex.locks().all_free());
}

TEST(PriorityWins, EarlierPriorityTaskWinsTheContendedItem) {
  // Two tasks collide on item 0. The later-priority task grabs it first
  // (forced by a barrier choreography), then the earlier one poisons it
  // and must commit this very round.
  ThreadPool pool(2);
  SpinBarrier barrier(2);
  std::atomic<int> winner{-1};
  std::atomic<bool> first_9{true};
  std::atomic<bool> first_1{true};
  SpeculativeExecutor ex(
      pool, 8,
      [&](TaskId t, IterationContext& ctx) {
        // Retries of the aborted task must skip the two-party barrier
        // choreography (their partner is gone).
        if (t == 9) {
          if (!first_9.exchange(false)) {
            ctx.acquire(0);
            return;
          }
          ctx.acquire(0);            // grabs the item first...
          barrier.arrive_and_wait(); // ...then lets the earlier task try
          // Busy section with a cancellation point: the poisoned owner
          // must notice and abort here (acquire re-checks status).
          for (int spin = 0; spin < 100000; ++spin) ctx.acquire(0);
          winner.store(9);
        } else {                     // t == 1: earlier priority
          if (!first_1.exchange(false)) {
            ctx.acquire(0);
            return;
          }
          barrier.arrive_and_wait();
          ctx.acquire(0);            // poisons task 9, waits, then takes it
          winner.store(1);
        }
      },
      2, WorklistPolicy::kFifo, ArbitrationPolicy::kPriorityWins);
  // The two-party barrier choreography needs both tasks running
  // concurrently; override the core-count lane cap.
  ex.set_pipeline({.max_lanes = 2});
  std::vector<TaskId> tasks{9, 1};  // FIFO: 9 launches first
  ex.push_initial(tasks);
  const auto stats = ex.run_round(2);
  EXPECT_EQ(stats.committed, 1u);
  EXPECT_EQ(stats.aborted, 1u);
  EXPECT_EQ(winner.load(), 1);  // the earlier task won
  // Task 9 was requeued; with nobody contending it commits now.
  while (!ex.done()) (void)ex.run_round(2);
  EXPECT_TRUE(ex.locks().all_free());
}

TEST(AbortSelf, LaterArrivalAbortsRegardlessOfPriority) {
  // Same choreography under abort-self: the earlier-priority task arrives
  // second and therefore aborts.
  ThreadPool pool(2);
  SpinBarrier barrier(2);
  std::atomic<int> aborted_task{-1};
  std::atomic<bool> first_9{true};
  std::atomic<bool> first_1{true};
  SpeculativeExecutor ex(
      pool, 8,
      [&](TaskId t, IterationContext& ctx) {
        if (t == 9) {
          if (!first_9.exchange(false)) {
            ctx.acquire(0);
            return;
          }
          ctx.acquire(0);
          barrier.arrive_and_wait();
        } else {
          if (!first_1.exchange(false)) {
            ctx.acquire(0);
            return;
          }
          barrier.arrive_and_wait();
          try {
            ctx.acquire(0);
          } catch (const AbortIteration&) {
            aborted_task.store(static_cast<int>(t));
            throw;
          }
        }
      },
      3, WorklistPolicy::kFifo, ArbitrationPolicy::kAbortSelf);
  ex.set_pipeline({.max_lanes = 2});  // barrier choreography needs 2 lanes
  std::vector<TaskId> tasks{9, 1};
  ex.push_initial(tasks);
  const auto stats = ex.run_round(2);
  EXPECT_EQ(stats.committed, 1u);
  EXPECT_EQ(stats.aborted, 1u);
  EXPECT_EQ(aborted_task.load(), 1);  // earlier priority lost anyway
  while (!ex.done()) (void)ex.run_round(2);
}

TEST(PriorityWins, PoisonedFinisherFailsItsCommit) {
  // The owner finishes its operator body without another acquire; the
  // poison must still prevent its commit (the final CAS catches it).
  ThreadPool pool(2);
  SpinBarrier barrier(2);
  std::atomic<bool> owner_finished{false};
  std::atomic<bool> first_9{true};
  std::atomic<bool> first_1{true};
  SpeculativeExecutor ex(
      pool, 4,
      [&](TaskId t, IterationContext& ctx) {
        if (t == 9) {
          if (!first_9.exchange(false)) {
            ctx.acquire(0);
            return;
          }
          ctx.acquire(0);
          barrier.arrive_and_wait();
          // Wait until the earlier task is (very likely) inside its
          // poison-and-wait loop, then return — no cancellation point.
          while (!owner_finished.load()) {
            std::this_thread::yield();
          }
        } else {
          if (!first_1.exchange(false)) {
            ctx.acquire(0);
            return;
          }
          barrier.arrive_and_wait();
          owner_finished.store(true);
          ctx.acquire(0);  // poisons 9; 9 returns; CAS fails; we proceed
        }
      },
      4, WorklistPolicy::kFifo, ArbitrationPolicy::kPriorityWins);
  ex.set_pipeline({.max_lanes = 2});  // barrier choreography needs 2 lanes
  std::vector<TaskId> tasks{9, 1};
  ex.push_initial(tasks);
  const auto stats = ex.run_round(2);
  EXPECT_EQ(stats.committed, 1u);
  EXPECT_EQ(stats.aborted, 1u);
  while (!ex.done()) (void)ex.run_round(2);
  EXPECT_EQ(ex.totals().committed, 2u);
}

TEST(PriorityWins, PoisonedMutationsRollBack) {
  // All tasks mutate a private counter then collide on item 0. Under
  // priority-wins every aborted attempt (poisoned or arbitration-lost)
  // must leave no trace.
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  SpeculativeExecutor ex(
      pool, 17,
      [&](TaskId t, IterationContext& ctx) {
        ctx.acquire(1 + static_cast<std::uint32_t>(t));
        counter.fetch_add(1);
        ctx.on_abort([&] { counter.fetch_sub(1); });
        ctx.acquire(0);
      },
      5, WorklistPolicy::kRandom, ArbitrationPolicy::kPriorityWins);
  std::vector<TaskId> tasks(16);
  std::iota(tasks.begin(), tasks.end(), TaskId{0});
  ex.push_initial(tasks);
  int rounds = 0;
  while (!ex.done() && rounds++ < 1000) (void)ex.run_round(16);
  ASSERT_TRUE(ex.done());
  EXPECT_EQ(counter.load(), 16);
  EXPECT_EQ(ex.totals().committed, 16u);
  EXPECT_TRUE(ex.locks().all_free());
}

TEST(PriorityWins, ChaosAgainstSequentialOracle) {
  // Same chaos invariant as the abort-self suite: randomized overlapping
  // effects, final state must match the once-each oracle.
  constexpr std::uint32_t kCells = 24;
  constexpr std::uint32_t kTasks = 150;
  Rng gen_rng(99);
  struct Effect {
    std::uint32_t first;
    std::uint32_t count;
    std::int64_t delta;
  };
  std::vector<Effect> effects(kTasks);
  for (auto& e : effects) {
    e.first = static_cast<std::uint32_t>(gen_rng.below(kCells));
    e.count = 1 + static_cast<std::uint32_t>(gen_rng.below(3));
    e.delta = gen_rng.between(-4, 4);
  }
  std::vector<std::int64_t> oracle(kCells, 0);
  for (const auto& e : effects) {
    for (std::uint32_t i = 0; i < e.count; ++i) {
      oracle[(e.first + i) % kCells] += e.delta;
    }
  }
  std::vector<std::int64_t> cells(kCells, 0);
  ThreadPool pool(4);
  SpeculativeExecutor ex(
      pool, kCells,
      [&](TaskId t, IterationContext& ctx) {
        const Effect& e = effects[t];
        for (std::uint32_t i = 0; i < e.count; ++i) {
          const std::uint32_t cell = (e.first + i) % kCells;
          ctx.acquire(cell);
          cells[cell] += e.delta;
          ctx.on_abort([&cells, cell, d = e.delta] { cells[cell] -= d; });
        }
      },
      6, WorklistPolicy::kRandom, ArbitrationPolicy::kPriorityWins);
  std::vector<TaskId> tasks(kTasks);
  std::iota(tasks.begin(), tasks.end(), TaskId{0});
  ex.push_initial(tasks);
  int rounds = 0;
  while (!ex.done() && rounds++ < 100000) (void)ex.run_round(16);
  ASSERT_TRUE(ex.done());
  EXPECT_EQ(cells, oracle);
}

TEST(PriorityWins, ForeignLockFallsBackToAbortSelf) {
  ThreadPool pool(1);
  std::atomic<int> attempts{0};
  SpeculativeExecutor ex(
      pool, 2,
      [&](TaskId, IterationContext& ctx) {
        attempts.fetch_add(1);
        ctx.acquire(1);  // held by a foreign owner below
      },
      7, WorklistPolicy::kRandom, ArbitrationPolicy::kPriorityWins);
  ASSERT_TRUE(ex.locks().try_acquire(1, 123456789));
  std::vector<TaskId> tasks{0};
  ex.push_initial(tasks);
  const auto stats = ex.run_round(1);
  EXPECT_EQ(stats.aborted, 1u);  // no deadlock, no wait
  ex.locks().release(1, 123456789);
  while (!ex.done()) (void)ex.run_round(1);
  EXPECT_EQ(ex.totals().committed, 1u);
}

}  // namespace
}  // namespace optipar
