#include <gtest/gtest.h>

#include <cmath>

#include "control/baselines.hpp"
#include "control/hybrid.hpp"
#include "control/recurrence.hpp"

namespace optipar {
namespace {

RoundStats make_round(std::uint32_t launched, double ratio) {
  RoundStats s;
  s.launched = launched;
  s.aborted = static_cast<std::uint32_t>(std::lround(ratio * launched));
  s.committed = s.launched - s.aborted;
  return s;
}

/// Feed the controller `windows` full averaging windows of constant ratio.
std::uint32_t drive(Controller& c, double ratio, int rounds) {
  std::uint32_t m = c.initial_m();
  for (int i = 0; i < rounds; ++i) m = c.observe(make_round(m, ratio));
  return m;
}

ControllerParams base_params() {
  ControllerParams p;
  p.rho = 0.25;
  p.T = 4;
  p.small_m_regime = false;  // most unit tests exercise the plain algorithm
  return p;
}

TEST(RoundStats, ConflictRatio) {
  EXPECT_DOUBLE_EQ(make_round(10, 0.3).conflict_ratio(), 0.3);
  EXPECT_DOUBLE_EQ(RoundStats{}.conflict_ratio(), 0.0);
}

TEST(ControllerParams, ClampWorks) {
  ControllerParams p;
  p.m_min = 2;
  p.m_max = 100;
  EXPECT_EQ(p.clamp(1), 2u);
  EXPECT_EQ(p.clamp(50), 50u);
  EXPECT_EQ(p.clamp(1000000), 100u);
}

TEST(HybridController, ValidatesParameters) {
  auto p = base_params();
  p.rho = 0.0;
  EXPECT_THROW((void)HybridController{p}, std::invalid_argument);
  p = base_params();
  p.m_min = 1;
  EXPECT_THROW((void)HybridController{p}, std::invalid_argument);
  p = base_params();
  p.T = 0;
  EXPECT_THROW((void)HybridController{p}, std::invalid_argument);
  p = base_params();
  p.alpha1 = 0.5;  // > alpha0
  EXPECT_THROW((void)HybridController{p}, std::invalid_argument);
  p = base_params();
  p.r_min = 0.0;
  EXPECT_THROW((void)HybridController{p}, std::invalid_argument);
}

TEST(HybridController, NoChangeWithinWindow) {
  HybridController c(base_params());
  const auto m0 = c.initial_m();
  // Fewer rounds than T: m must not move even with terrible ratios.
  for (std::uint32_t i = 0; i + 1 < base_params().T; ++i) {
    EXPECT_EQ(c.observe(make_round(m0, 0.9)), m0);
  }
}

TEST(HybridController, RecurrenceBFiresOnLargeDeviation) {
  // r = 0 (clamped to r_min = 3%) with ρ = 25% -> α = 1 > α₀ ->
  // m ← ⌈(0.25/0.03)·2⌉ = ⌈16.67⌉ = 17.
  auto p = base_params();
  HybridController c(p);
  const auto m = drive(c, 0.0, static_cast<int>(p.T));
  EXPECT_EQ(m, 17u);
  EXPECT_EQ(c.last_branch(), HybridController::Branch::kRecurrenceB);
}

TEST(HybridController, RecurrenceAFiresOnModerateDeviation) {
  // r = 0.22 vs ρ = 0.25: α = 0.12 in (α₁, α₀] -> Recurrence A:
  // m ← ⌈(1 − 0.22 + 0.25)·m⌉.
  auto p = base_params();
  p.m0 = 100;
  HybridController c(p);
  const auto m = drive(c, 0.22, static_cast<int>(p.T));
  EXPECT_EQ(m, 103u);
  EXPECT_EQ(c.last_branch(), HybridController::Branch::kRecurrenceA);
}

TEST(HybridController, DeadBandFreezesM) {
  // r = 0.24 vs ρ = 0.25: α = 0.04 <= α₁ = 0.06 -> no change.
  auto p = base_params();
  p.m0 = 50;
  HybridController c(p);
  const auto m = drive(c, 0.24, static_cast<int>(p.T) * 5);
  EXPECT_EQ(m, 50u);
  EXPECT_EQ(c.last_branch(), HybridController::Branch::kDeadBand);
}

TEST(HybridController, ShrinksWhenRatioTooHigh) {
  // r = 0.75 vs ρ = 0.25: α = 2 > α₀ -> B: m ← ⌈m/3⌉.
  auto p = base_params();
  p.m0 = 90;
  HybridController c(p);
  const auto m = drive(c, 0.75, static_cast<int>(p.T));
  EXPECT_EQ(m, 30u);
}

TEST(HybridController, RespectsClampBounds) {
  auto p = base_params();
  p.m0 = 2;
  p.m_max = 64;
  HybridController c(p);
  const auto m = drive(c, 0.0, 200);
  EXPECT_EQ(m, 64u);  // saturates at m_max
  const auto shrunk = drive(c, 0.99, 400);
  EXPECT_EQ(shrunk, p.m_min);  // and at m_min (Remark 1: never below 2)
}

TEST(HybridController, ResetRestoresInitialState) {
  auto p = base_params();
  HybridController c(p);
  drive(c, 0.0, 40);
  c.reset();
  EXPECT_EQ(c.initial_m(), p.m0);
  EXPECT_EQ(c.current_m(), p.m0);
  EXPECT_EQ(c.last_branch(), HybridController::Branch::kNone);
}

TEST(HybridController, SmallMRegimeUsesLongerWindowAndWiderBand) {
  auto p = base_params();
  p.small_m_regime = true;
  p.m_small = 20;
  p.T_small = 8;
  p.alpha1_small = 0.12;
  p.m0 = 10;
  HybridController c(p);
  // At m = 10 < m_small, window is 8 rounds: 4 rounds must not change m.
  std::uint32_t m = c.initial_m();
  for (int i = 0; i < 7; ++i) {
    m = c.observe(make_round(m, 0.0));
    EXPECT_EQ(m, 10u) << "changed before the small-m window closed";
  }
  m = c.observe(make_round(m, 0.0));
  EXPECT_GT(m, 10u);  // window closed, Recurrence B fires
}

TEST(HybridController, SmallMWiderDeadBandSuppressesModerateDeviations) {
  // m0 = 100 with m_small = 200 puts a comfortably-quantized m in the
  // small regime (make_round(100, 0.22) is exactly 22 aborts).
  auto p = base_params();
  p.small_m_regime = true;
  p.m_small = 200;
  p.T_small = 4;
  p.alpha1_small = 0.15;
  p.m0 = 100;
  HybridController c(p);
  // α = |1 − 0.22/0.25| = 0.12 < 0.15 -> frozen in the small-m regime...
  EXPECT_EQ(drive(c, 0.22, 4), 100u);
  // ...but the same deviation moves a controller without the regime.
  auto p2 = base_params();
  p2.m0 = 100;
  HybridController big(p2);
  EXPECT_NE(drive(big, 0.22, 4), 100u);
}

TEST(RecurrenceA, StepFormula) {
  auto p = base_params();
  p.m0 = 100;
  RecurrenceAController c(p);
  // r = 0.45, ρ = 0.25: m ← ⌈(1 − 0.45 + 0.25)·100⌉ = 80.
  EXPECT_EQ(drive(c, 0.45, static_cast<int>(p.T)), 80u);
  EXPECT_EQ(c.name(), "recurrence-A");
}

TEST(RecurrenceB, StepFormulaAndRMinClamp) {
  auto p = base_params();
  p.m0 = 100;
  RecurrenceBController c(p);
  // r = 0.5: m ← ⌈(0.25/0.5)·100⌉ = 50.
  EXPECT_EQ(drive(c, 0.5, static_cast<int>(p.T)), 50u);
  c.reset();
  // r = 0.001 clamps to r_min = 0.03: m ← ⌈(0.25/0.03)·100⌉ = 834.
  EXPECT_EQ(drive(c, 0.001, static_cast<int>(p.T)), 834u);
}

TEST(RecurrenceControllers, ConvergenceSpeedBFasterThanA) {
  // From m0 = 2 with a synthetic linear plant r(m) = min(1, m/1000)·0.5:
  // B reaches the ρ-neighborhood in far fewer windows than A.
  auto plant = [](std::uint32_t m) {
    return std::min(1.0, static_cast<double>(m) / 1000.0) * 0.5;
  };
  auto run_until_near = [&](Controller& c, int limit) {
    std::uint32_t m = c.initial_m();
    for (int i = 0; i < limit; ++i) {
      if (std::abs(plant(m) - 0.25) / 0.25 < 0.10) return i;
      m = c.observe(make_round(m, plant(m)));
    }
    return limit;
  };
  auto p = base_params();
  RecurrenceAController a(p);
  RecurrenceBController b(p);
  const int steps_a = run_until_near(a, 4000);
  const int steps_b = run_until_near(b, 4000);
  EXPECT_LT(steps_b, steps_a / 4);
}

TEST(FixedController, NeverMoves) {
  FixedController c(16);
  EXPECT_EQ(c.initial_m(), 16u);
  EXPECT_EQ(drive(c, 0.9, 50), 16u);
  EXPECT_EQ(c.name(), "fixed-16");
}

TEST(BisectionController, ConvergesOnMonotonePlant) {
  // Plant: r(m) = m / 1000; ρ = 0.25 -> μ = 250.
  auto p = base_params();
  p.m_min = 2;
  p.m_max = 1024;
  BisectionController c(p);
  std::uint32_t m = c.initial_m();
  for (int i = 0; i < 200; ++i) {
    m = c.observe(make_round(m, static_cast<double>(m) / 1000.0));
  }
  EXPECT_NEAR(static_cast<double>(m), 250.0, 15.0);
}

TEST(BisectionController, ResetRestartsBracket) {
  auto p = base_params();
  BisectionController c(p);
  drive(c, 0.9, 100);
  c.reset();
  EXPECT_EQ(c.initial_m(),
            p.clamp((static_cast<std::uint64_t>(p.m_min) + p.m_max) / 2));
}

TEST(AimdController, IncreasesWhenUnderTarget) {
  auto p = base_params();
  p.m0 = 10;
  AimdController c(p, /*increase=*/4, /*decay=*/0.5);
  EXPECT_EQ(drive(c, 0.0, static_cast<int>(p.T)), 14u);
}

TEST(AimdController, DecaysWhenOverTarget) {
  auto p = base_params();
  p.m0 = 100;
  AimdController c(p, 4, 0.5);
  EXPECT_EQ(drive(c, 0.9, static_cast<int>(p.T)), 50u);
}

TEST(AimdController, ValidatesDecay) {
  EXPECT_THROW((void)AimdController(base_params(), 4, 1.5), std::invalid_argument);
  EXPECT_THROW((void)AimdController(base_params(), 4, 0.0), std::invalid_argument);
}

TEST(Controllers, DeterministicGivenSameObservations) {
  auto p = base_params();
  HybridController c1(p);
  HybridController c2(p);
  std::uint32_t m1 = c1.initial_m();
  std::uint32_t m2 = c2.initial_m();
  const double ratios[] = {0.0, 0.1, 0.4, 0.3, 0.25, 0.05, 0.6, 0.2};
  for (int i = 0; i < 64; ++i) {
    m1 = c1.observe(make_round(m1, ratios[i % 8]));
    m2 = c2.observe(make_round(m2, ratios[i % 8]));
    EXPECT_EQ(m1, m2);
  }
}

}  // namespace
}  // namespace optipar
