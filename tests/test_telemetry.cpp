// Telemetry-layer tests (DESIGN.md §10): histogram bucketing, the
// drop-oldest event ring, scoped timers, golden metric renderings, and the
// master reconciliation invariant — with telemetry attached, the per-lane
// counter sums equal the executor's own RoundStats totals exactly, at every
// pool size.
#include <gtest/gtest.h>

#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "rt/spec_executor.hpp"
#include "sim/trace.hpp"
#include "support/telemetry/metrics_registry.hpp"
#include "support/telemetry/telemetry.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"

namespace optipar {
namespace {

using telemetry::EventKind;
using telemetry::EventRing;
using telemetry::RuntimeTelemetry;
using telemetry::TraceEvent;
using telemetry::WorkHistogram;

// ---------------------------------------------------------------------------
// WorkHistogram: power-of-two buckets 1, 2, 4, ..., 128, +inf.
// ---------------------------------------------------------------------------

TEST(WorkHistogram, BucketBoundaries) {
  // Bucket b covers (upper_bound(b-1), upper_bound(b)].
  EXPECT_EQ(WorkHistogram::bucket_of(0), 0u);
  EXPECT_EQ(WorkHistogram::bucket_of(1), 0u);
  EXPECT_EQ(WorkHistogram::bucket_of(2), 1u);
  EXPECT_EQ(WorkHistogram::bucket_of(3), 2u);
  EXPECT_EQ(WorkHistogram::bucket_of(4), 2u);
  EXPECT_EQ(WorkHistogram::bucket_of(5), 3u);
  EXPECT_EQ(WorkHistogram::bucket_of(8), 3u);
  EXPECT_EQ(WorkHistogram::bucket_of(128), 7u);
  EXPECT_EQ(WorkHistogram::bucket_of(129), 8u);
  EXPECT_EQ(WorkHistogram::bucket_of(1u << 20), 8u);  // clamps to +inf

  EXPECT_EQ(WorkHistogram::upper_bound(0), 1u);
  EXPECT_EQ(WorkHistogram::upper_bound(7), 128u);
  EXPECT_EQ(WorkHistogram::upper_bound(8), ~std::uint64_t{0});

  // Every value lands in exactly the bucket whose bound brackets it.
  for (std::uint64_t v = 1; v <= 200; ++v) {
    const std::size_t b = WorkHistogram::bucket_of(v);
    EXPECT_LE(v, WorkHistogram::upper_bound(b)) << v;
    if (b > 0) {
      EXPECT_GT(v, WorkHistogram::upper_bound(b - 1)) << v;
    }
  }
}

TEST(WorkHistogram, RecordTotalAndMerge) {
  WorkHistogram h;
  for (std::uint64_t v : {1, 1, 2, 3, 9, 200}) h.record(v);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.counts[0], 2u);  // the two 1s
  EXPECT_EQ(h.counts[1], 1u);  // the 2
  EXPECT_EQ(h.counts[2], 1u);  // the 3
  EXPECT_EQ(h.counts[4], 1u);  // the 9 (bucket (8,16])
  EXPECT_EQ(h.counts[8], 1u);  // the 200 (+inf)

  WorkHistogram other;
  other.record(1);
  h.merge(other);
  EXPECT_EQ(h.total(), 7u);
  EXPECT_EQ(h.counts[0], 3u);
}

// ---------------------------------------------------------------------------
// EventRing: bounded, drop-oldest, drains in order.
// ---------------------------------------------------------------------------

TraceEvent numbered_event(std::uint64_t i) {
  TraceEvent ev;
  ev.kind = EventKind::kRetry;
  ev.round = i;
  ev.a = i;
  return ev;
}

TEST(EventRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(EventRing(1).capacity(), 8u);   // minimum
  EXPECT_EQ(EventRing(9).capacity(), 16u);
  EXPECT_EQ(EventRing(16).capacity(), 16u);
}

TEST(EventRing, OverflowDropsOldestAndCounts) {
  EventRing ring(8);
  for (std::uint64_t i = 0; i < 13; ++i) ring.push(numbered_event(i));
  EXPECT_EQ(ring.size(), 8u);
  EXPECT_EQ(ring.dropped(), 5u);  // events 0..4 were evicted

  std::vector<TraceEvent> out;
  ring.drain(out);
  ASSERT_EQ(out.size(), 8u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].a, 5 + i);  // oldest surviving event first
  }
  EXPECT_EQ(ring.size(), 0u);       // drain empties the ring
  EXPECT_EQ(ring.dropped(), 5u);    // ...but keeps the loss accounting

  ring.push(numbered_event(99));    // reusable after a drain
  out.clear();
  ring.drain(out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].a, 99u);
}

// ---------------------------------------------------------------------------
// ScopedTimer / TimerAccumulator.
// ---------------------------------------------------------------------------

TEST(ScopedTimer, AccumulatesSpans) {
  TimerAccumulator acc;
  {
    ScopedTimer t(&acc);
  }
  {
    ScopedTimer t(&acc);
    t.stop();
    t.stop();  // idempotent: the span is counted once
  }
  EXPECT_EQ(acc.count(), 2u);
  EXPECT_GE(acc.total_seconds(), 0.0);

  acc.reset();
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.total_ns(), 0u);
}

TEST(ScopedTimer, NullAccumulatorIsFree) {
  // The disabled contract: nullptr means no clock reads, no effects, and
  // stop() is safe.
  ScopedTimer t(nullptr);
  t.stop();
}

TEST(TimerSet, StableNamedAccumulators) {
  telemetry::TimerSet timers;
  TimerAccumulator& a = timers.at("alpha");
  TimerAccumulator& b = timers.at("beta");
  EXPECT_EQ(&a, &timers.at("alpha"));  // get-or-create, stable address
  a.add(100, 2);
  b.add(50);
  const auto snap = timers.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].name, "alpha");  // name-sorted
  EXPECT_EQ(snap[0].total_ns, 100u);
  EXPECT_EQ(snap[0].count, 2u);
  EXPECT_EQ(snap[1].name, "beta");
}

// ---------------------------------------------------------------------------
// Golden renderings: the exact bytes scrapers and check_metrics.py consume.
// ---------------------------------------------------------------------------

MetricsRegistry golden_registry() {
  using Type = MetricsRegistry::Type;
  MetricsRegistry reg;
  reg.add("optipar_demo_total", Type::kCounter, "Demo counter",
          {{"lane", "0"}}, 3);
  reg.add("optipar_demo_total", Type::kCounter, "Demo counter",
          {{"lane", "1"}}, 4.5);
  reg.add("optipar_up", Type::kGauge, "Demo gauge", {}, 1);
  reg.add_histogram("optipar_work", "Work histogram", {},
                    {{"1", 2}, {"2", 5}, {"+Inf", 6}}, 13.5);
  return reg;
}

TEST(MetricsRegistry, GoldenPrometheusRendering) {
  std::ostringstream os;
  golden_registry().render_prometheus(os);
  EXPECT_EQ(os.str(),
            "# HELP optipar_demo_total Demo counter\n"
            "# TYPE optipar_demo_total counter\n"
            "optipar_demo_total{lane=\"0\"} 3\n"
            "optipar_demo_total{lane=\"1\"} 4.5\n"
            "# HELP optipar_up Demo gauge\n"
            "# TYPE optipar_up gauge\n"
            "optipar_up 1\n"
            "# HELP optipar_work Work histogram\n"
            "# TYPE optipar_work histogram\n"
            "optipar_work_bucket{le=\"1\"} 2\n"
            "optipar_work_bucket{le=\"2\"} 5\n"
            "optipar_work_bucket{le=\"+Inf\"} 6\n"
            "optipar_work_sum 13.5\n"
            "optipar_work_count 6\n");
}

TEST(MetricsRegistry, GoldenJsonRendering) {
  std::ostringstream os;
  golden_registry().render_json(os);
  EXPECT_EQ(
      os.str(),
      "{\"schema\":\"optipar.metrics.v2\",\"metrics\":["
      "{\"name\":\"optipar_demo_total\",\"type\":\"counter\","
      "\"help\":\"Demo counter\",\"samples\":["
      "{\"labels\":{\"lane\":\"0\"},\"value\":3},"
      "{\"labels\":{\"lane\":\"1\"},\"value\":4.5}]},"
      "{\"name\":\"optipar_up\",\"type\":\"gauge\",\"help\":\"Demo gauge\","
      "\"samples\":[{\"labels\":{},\"value\":1}]},"
      "{\"name\":\"optipar_work\",\"type\":\"histogram\","
      "\"help\":\"Work histogram\",\"samples\":[{\"labels\":{},"
      "\"buckets\":[{\"le\":\"1\",\"count\":2},{\"le\":\"2\",\"count\":5},"
      "{\"le\":\"+Inf\",\"count\":6}],\"sum\":13.5,\"count\":6}]}"
      "]}\n");
}

TEST(MetricsRegistry, TypeMismatchThrows) {
  using Type = MetricsRegistry::Type;
  MetricsRegistry reg;
  reg.add("optipar_x", Type::kCounter, "x", {}, 1);
  EXPECT_THROW(reg.add("optipar_x", Type::kGauge, "x", {}, 2),
               std::logic_error);
}

TEST(TraceJsonl, GoldenEventAndStepLines) {
  TraceEvent ev;
  ev.kind = EventKind::kQuarantine;
  ev.lane = 2;
  ev.round = 7;
  ev.a = 42;
  ev.b = 3;
  ev.x = 0.5;
  ev.y = -0.25;
  ev.note = "boom \"x\"";
  const std::vector<TraceEvent> events{ev};
  std::ostringstream os;
  telemetry::write_events_jsonl(os, events);
  EXPECT_EQ(os.str(),
            "{\"type\":\"event\",\"kind\":\"quarantine\",\"round\":7,"
            "\"lane\":2,\"a\":42,\"b\":3,\"x\":0.5,\"y\":-0.25,"
            "\"note\":\"boom \\\"x\\\"\"}\n");

  StepRecord rec;
  rec.step = 3;
  rec.m = 8;
  rec.launched = 8;
  rec.committed = 6;
  rec.aborted = 2;
  rec.pending_after = 40;
  rec.error = "bad op";
  std::ostringstream os2;
  write_step_jsonl(os2, rec);
  EXPECT_EQ(os2.str(),
            "{\"type\":\"round\",\"step\":3,\"m\":8,\"launched\":8,"
            "\"committed\":6,\"aborted\":2,\"retried\":0,\"quarantined\":0,"
            "\"injected\":0,\"pending_after\":40,\"r\":0.25,"
            "\"degraded\":false,\"error\":\"bad op\"}\n");
}

// ---------------------------------------------------------------------------
// Reconciliation: lane counter sums == executor RoundStats totals, at every
// pool size, on both conflict-free and conflict-heavy workloads.
// ---------------------------------------------------------------------------

struct RunResult {
  ExecutorTotals executor;
  telemetry::TelemetryTotals lanes;
};

/// Drive `tasks` tasks to completion at allocation m with telemetry
/// attached. stride=1 gives a conflict-free workload (task t owns item t);
/// stride=0 makes every task contend on item 0.
RunResult run_with_telemetry(std::size_t threads, std::uint32_t tasks_n,
                             std::uint32_t m, std::uint32_t stride) {
  ThreadPool pool(threads);
  SpeculativeExecutor ex(
      pool, tasks_n,
      [stride](TaskId t, IterationContext& ctx) {
        ctx.acquire(static_cast<std::uint32_t>(t * stride));
      },
      /*seed=*/12345);
  RuntimeTelemetry tel;
  ex.set_telemetry(&tel);
  std::vector<TaskId> tasks(tasks_n);
  std::iota(tasks.begin(), tasks.end(), TaskId{0});
  ex.push_initial(tasks);
  while (!ex.done()) (void)ex.run_round(m);
  return {ex.totals(), tel.totals()};
}

TEST(TelemetryReconciliation, LaneSumsMatchTotalsAcrossPoolSizes) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    for (const std::uint32_t stride : {1u, 0u}) {
      const RunResult r = run_with_telemetry(threads, 96, 16, stride);
      EXPECT_EQ(r.lanes.executed, r.executor.launched)
          << "threads=" << threads << " stride=" << stride;
      EXPECT_EQ(r.lanes.committed, r.executor.committed)
          << "threads=" << threads << " stride=" << stride;
      EXPECT_EQ(r.lanes.aborted, r.executor.aborted)
          << "threads=" << threads << " stride=" << stride;
      EXPECT_EQ(r.lanes.retried, r.executor.retried);
      EXPECT_EQ(r.lanes.quarantined, r.executor.quarantined);
      // Every executed task recorded exactly one work sample.
      EXPECT_EQ(r.lanes.work.total(), r.executor.launched);
      // All 96 tasks eventually committed regardless of contention.
      EXPECT_EQ(r.executor.committed, 96u);
    }
  }
}

TEST(TelemetryReconciliation, ConflictFreeRunIsDeterministic) {
  // A conflict-free workload retires everything with zero aborts and zero
  // lock failures, independent of the pool size.
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    const RunResult r = run_with_telemetry(threads, 64, 8, 1);
    EXPECT_EQ(r.lanes.executed, 64u);
    EXPECT_EQ(r.lanes.committed, 64u);
    EXPECT_EQ(r.lanes.aborted, 0u);
    EXPECT_EQ(r.lanes.lock_failures, 0u);
    EXPECT_EQ(r.lanes.dropped_events, 0u);
  }
}

TEST(TelemetryReconciliation, ContendedRunCountsLockFailures) {
  const RunResult r = run_with_telemetry(4, 64, 16, 0);
  // Every abort on the all-contend-on-item-0 workload is a failed acquire.
  EXPECT_GT(r.executor.aborted, 0u);
  EXPECT_GE(r.lanes.lock_failures, r.executor.aborted);
}

TEST(RuntimeTelemetry, RoundEventsAndDetach) {
  ThreadPool pool(2);
  SpeculativeExecutor ex(
      pool, 16,
      [](TaskId t, IterationContext& ctx) {
        ctx.acquire(static_cast<std::uint32_t>(t));
      },
      1);
  RuntimeTelemetry tel;
  ex.set_telemetry(&tel);
  ASSERT_EQ(ex.telemetry(), &tel);
  std::vector<TaskId> tasks(16);
  std::iota(tasks.begin(), tasks.end(), TaskId{0});
  ex.push_initial(tasks);
  (void)ex.run_round(8);

  const auto events = tel.drain_events();
  ASSERT_EQ(events.size(), 2u);  // round_start + round_end, same round
  EXPECT_EQ(events[0].kind, EventKind::kRoundStart);
  EXPECT_EQ(events[0].a, 8u);   // requested m
  EXPECT_EQ(events[0].b, 8u);   // taken
  EXPECT_EQ(events[1].kind, EventKind::kRoundEnd);
  EXPECT_EQ(events[1].a, 8u);   // launched
  EXPECT_EQ(events[1].b, 8u);   // committed

  // Detach: further rounds must record nothing.
  ex.set_telemetry(nullptr);
  EXPECT_EQ(ex.telemetry(), nullptr);
  (void)ex.run_round(8);
  EXPECT_TRUE(tel.drain_events().empty());
  EXPECT_EQ(tel.totals().executed, 8u);  // only the attached round counted
}

TEST(RuntimeTelemetry, ExportReconcilesWithTotals) {
  // The rendered export's lane sums must equal the totals() view — the
  // property scripts/check_metrics.py re-verifies on CLI output.
  const RunResult r = run_with_telemetry(2, 32, 8, 0);
  EXPECT_EQ(r.lanes.executed, r.lanes.committed + r.lanes.aborted);
}

}  // namespace
}  // namespace optipar
