#include "model/exact.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "model/conflict_ratio.hpp"
#include "model/seating.hpp"
#include "model/theory.hpp"

namespace optipar {
namespace {

TEST(Exact, RejectsLargeGraphs) {
  const auto g = CsrGraph::from_edges(exact::kMaxExactNodes + 1, {});
  EXPECT_THROW((void)exact::exact_conflict_curve(g), std::invalid_argument);
}

TEST(Exact, EmptyAndEdgelessGraphs) {
  const auto empty = CsrGraph::from_edges(0, {});
  EXPECT_EQ(exact::exact_conflict_curve(empty).k_bar.size(), 1u);
  const auto iso = CsrGraph::from_edges(5, {});
  const auto curve = exact::exact_conflict_curve(iso);
  for (std::uint32_t m = 0; m <= 5; ++m) EXPECT_EQ(curve.k_bar[m], 0.0);
  EXPECT_DOUBLE_EQ(exact::exact_expected_mis(iso), 5.0);
}

TEST(Exact, CompleteGraphClosedForm) {
  const auto g = gen::complete(6);
  const auto curve = exact::exact_conflict_curve(g);
  for (std::uint32_t m = 0; m <= 6; ++m) {
    EXPECT_NEAR(curve.k_bar[m], exact::complete_k_bar(6, m), 1e-12);
  }
  EXPECT_THROW((void)exact::complete_k_bar(6, 7), std::invalid_argument);
}

TEST(Exact, StarClosedForm) {
  for (const std::uint32_t leaves : {2u, 4u, 7u}) {
    const auto g = gen::star(leaves);
    const auto curve = exact::exact_conflict_curve(g);
    for (std::uint32_t m = 0; m <= leaves + 1; ++m) {
      EXPECT_NEAR(curve.k_bar[m], exact::star_k_bar(leaves, m), 1e-12)
          << "leaves=" << leaves << " m=" << m;
    }
  }
  EXPECT_THROW((void)exact::star_k_bar(3, 5), std::invalid_argument);
}

TEST(Exact, StarClosedFormMatchesProp2) {
  // k̄(2) = 2/n must equal d/(n−1) (Prop. 2 gives Δr̄(1) = k̄(2)/2).
  for (const std::uint32_t leaves : {3u, 9u, 100u}) {
    const auto n = leaves + 1;
    const double d = 2.0 * leaves / n;
    EXPECT_NEAR(exact::star_k_bar(leaves, 2), d / (n - 1.0), 1e-12);
  }
}

TEST(Exact, UnionOfCliquesMatchesThm3Exactly) {
  // Thm. 3's closed form is exact for K_d^n — verify against full
  // permutation enumeration, not Monte-Carlo.
  const std::uint32_t n = 9, d = 2;  // 3 triangles
  const auto g = gen::union_of_cliques(n, d);
  const auto curve = exact::exact_conflict_curve(g);
  for (std::uint32_t m = 0; m <= n; ++m) {
    EXPECT_NEAR(curve.expected_committed(m),
                theory::em_union_of_cliques(n, d, m), 1e-12)
        << "m=" << m;
  }
}

TEST(Exact, BmIsALowerBoundEverywhere) {
  Rng rng(3);
  const auto g = gen::gnm_random(8, 12, rng);
  const auto curve = exact::exact_conflict_curve(g);
  for (std::uint32_t m = 1; m <= 8; ++m) {
    EXPECT_GE(curve.expected_committed(m), theory::b_m(g, m) - 1e-12);
  }
}

TEST(Exact, PathMatchesSeatingDp) {
  for (const std::uint32_t n : {2u, 5u, 8u}) {
    EXPECT_NEAR(exact::exact_expected_mis(gen::path(n)),
                seating::expected_path(n), 1e-12);
  }
}

TEST(Exact, MonteCarloConvergesToExact) {
  Rng rng(4);
  const auto g = gen::gnm_random(9, 14, rng);
  const auto exact_curve = exact::exact_conflict_curve(g);
  const auto mc = estimate_conflict_curve(g, 30000, rng);
  for (std::uint32_t m = 1; m <= 9; ++m) {
    EXPECT_NEAR(mc.k_bar(m), exact_curve.k_bar[m],
                4 * mc.abort_stats[m].ci95() + 1e-3)
        << "m=" << m;
  }
}

TEST(Exact, RBarIsMonotoneExactly) {
  // Prop. 1 verified exactly (no MC tolerance) on several small graphs.
  Rng rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    const auto g = gen::gnm_random(8, 10 + trial * 3, rng);
    const auto curve = exact::exact_conflict_curve(g);
    for (std::uint32_t m = 1; m < 8; ++m) {
      EXPECT_GE(curve.r_bar(m + 1), curve.r_bar(m) - 1e-12);
    }
  }
}

TEST(Exact, KBarIsConvexExactly) {
  // Lemma 1 (convexity of k̄) verified exactly.
  Rng rng(6);
  for (int trial = 0; trial < 5; ++trial) {
    const auto g = gen::gnm_random(8, 12 + trial * 2, rng);
    const auto curve = exact::exact_conflict_curve(g);
    for (std::uint32_t m = 0; m + 2 <= 8; ++m) {
      const double second = curve.k_bar[m + 2] - 2 * curve.k_bar[m + 1] +
                            curve.k_bar[m];
      EXPECT_GE(second, -1e-12) << "m=" << m;
    }
  }
}

TEST(Exact, Prop2ExactOnArbitrarySmallGraphs) {
  Rng rng(7);
  for (int trial = 0; trial < 5; ++trial) {
    const auto g = gen::gnm_random(9, 10 + trial * 4, rng);
    const auto curve = exact::exact_conflict_curve(g);
    const double predicted =
        theory::initial_derivative(9, g.average_degree());
    EXPECT_NEAR(curve.r_bar(2) - curve.r_bar(1), predicted, 1e-12);
  }
}

}  // namespace
}  // namespace optipar
