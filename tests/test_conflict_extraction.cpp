// CC-graph extraction from real applications: graph squares (MIS/coloring
// lock footprints) and DMR cavity footprints.
#include <gtest/gtest.h>

#include "apps/dmr/refine.hpp"
#include "graph/algos.hpp"
#include "graph/generators.hpp"
#include "model/conflict_ratio.hpp"

namespace optipar {
namespace {

TEST(Square, PathBecomesDistanceTwoGraph) {
  const auto sq = square(gen::path(6));
  EXPECT_TRUE(sq.has_edge(0, 1));
  EXPECT_TRUE(sq.has_edge(0, 2));
  EXPECT_FALSE(sq.has_edge(0, 3));
  EXPECT_EQ(sq.num_edges(), 5u + 4u);  // distance-1 plus distance-2 pairs
  EXPECT_TRUE(sq.validate());
}

TEST(Square, StarBecomesComplete) {
  const auto sq = square(gen::star(7));
  EXPECT_EQ(sq.num_edges(), 8u * 7u / 2u);  // K_8
}

TEST(Square, EdgelessStaysEdgeless) {
  const auto sq = square(CsrGraph::from_edges(5, {}));
  EXPECT_EQ(sq.num_edges(), 0u);
}

TEST(Square, ContainsOriginalAndIsSane) {
  Rng rng(3);
  const auto g = gen::gnm_random(100, 250, rng);
  const auto sq = square(g);
  EXPECT_TRUE(sq.validate());
  for (const auto& [u, v] : g.edges()) EXPECT_TRUE(sq.has_edge(u, v));
  EXPECT_GE(sq.num_edges(), g.num_edges());
}

class DmrFootprintTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(11);
    for (int i = 0; i < 80; ++i) {
      pts_.push_back({rng.uniform() * 100.0, rng.uniform() * 100.0});
    }
    dmr::build_delaunay(mesh_, pts_);
    quality_.min_angle_deg = 25.0;
    quality_.min_edge = 3.0;
    quality_.set_domain(pts_);
  }

  std::vector<dmr::Point2> pts_;
  dmr::Mesh mesh_;
  dmr::RefineQuality quality_;
};

TEST_F(DmrFootprintTest, ProbeCavityIsReadOnlyAndSane) {
  const auto bad = dmr::bad_triangles(mesh_, quality_);
  ASSERT_FALSE(bad.empty());
  const auto slots_before = mesh_.num_triangle_slots();
  const auto alive_before = mesh_.num_alive_triangles();

  const dmr::TriId t = bad.front();
  const auto fp = dmr::probe_cavity(mesh_, mesh_.circumcenter_of(t), t);
  EXPECT_EQ(mesh_.num_triangle_slots(), slots_before);
  EXPECT_EQ(mesh_.num_alive_triangles(), alive_before);

  // The seed is in its own cavity; cavity and ring are disjoint and alive.
  EXPECT_NE(std::find(fp.cavity.begin(), fp.cavity.end(), t),
            fp.cavity.end());
  for (const auto tri : fp.cavity) {
    EXPECT_TRUE(mesh_.is_alive(tri));
    EXPECT_EQ(std::find(fp.ring.begin(), fp.ring.end(), tri),
              fp.ring.end());
  }
  // Every ring triangle borders some cavity triangle.
  for (const auto tri : fp.ring) {
    bool adjacent = false;
    for (const auto c : fp.cavity) {
      if (mesh_.slot_of_neighbor(tri, c) >= 0) adjacent = true;
    }
    EXPECT_TRUE(adjacent);
  }
}

TEST_F(DmrFootprintTest, ProbeWithBadSeedIsEmpty) {
  // A point far outside every circumcircle of the seed.
  const auto bad = dmr::bad_triangles(mesh_, quality_);
  ASSERT_FALSE(bad.empty());
  const auto fp =
      dmr::probe_cavity(mesh_, {1e9, 1e9}, bad.front());
  EXPECT_TRUE(fp.cavity.empty());
  EXPECT_TRUE(fp.ring.empty());
}

TEST_F(DmrFootprintTest, ProbeAgreesWithInsertPoint) {
  // The read-only footprint must be exactly the cavity a real insertion
  // carves: same cavity set (the triangles killed) and one new triangle
  // per boundary edge.
  const auto bad = dmr::bad_triangles(mesh_, quality_);
  ASSERT_FALSE(bad.empty());
  const dmr::TriId t = bad.front();
  const auto center = mesh_.circumcenter_of(t);
  if (!quality_.in_domain(center)) GTEST_SKIP() << "circumcenter outside";
  const auto fp = dmr::probe_cavity(mesh_, center, t);
  ASSERT_FALSE(fp.cavity.empty());

  const auto pid = mesh_.add_point(center);
  const auto res = dmr::insert_point(mesh_, pid, t);
  ASSERT_TRUE(res.ok);
  // Every probed cavity triangle is now dead; every ring triangle alive.
  for (const auto tri : fp.cavity) EXPECT_FALSE(mesh_.is_alive(tri));
  for (const auto tri : fp.ring) EXPECT_TRUE(mesh_.is_alive(tri));
  EXPECT_TRUE(mesh_.validate());
}

TEST_F(DmrFootprintTest, ConflictGraphShapeMatchesWorkset) {
  const auto bad = dmr::bad_triangles(mesh_, quality_);
  const auto cc = dmr::refinement_conflict_graph(mesh_, quality_, bad);
  EXPECT_EQ(cc.num_nodes(), bad.size());
  EXPECT_TRUE(cc.validate());
}

TEST_F(DmrFootprintTest, AdjacentBadTrianglesConflict) {
  // Any two bad triangles that are mesh neighbors lock each other's
  // target, so they must be adjacent in the conflict graph.
  const auto bad = dmr::bad_triangles(mesh_, quality_);
  const auto cc = dmr::refinement_conflict_graph(mesh_, quality_, bad);
  for (NodeId i = 0; i < bad.size(); ++i) {
    for (NodeId j = i + 1; j < bad.size(); ++j) {
      if (mesh_.slot_of_neighbor(bad[i], bad[j]) >= 0) {
        EXPECT_TRUE(cc.has_edge(i, j))
            << "neighbors " << bad[i] << "," << bad[j];
      }
    }
  }
}

TEST_F(DmrFootprintTest, ModelPredictsRuntimeOrderOfMagnitude) {
  // Small-scale version of bench/model_vs_runtime: the CC-graph prediction
  // and one real speculative round agree within wide MC tolerance.
  const auto bad = dmr::bad_triangles(mesh_, quality_);
  const auto cc = dmr::refinement_conflict_graph(mesh_, quality_, bad);
  if (cc.num_nodes() < 8) GTEST_SKIP() << "work-set too small";
  Rng rng(13);
  const auto predicted = estimate_conflict_curve(cc, 400, rng);
  const auto m = cc.num_nodes() / 2;

  StreamingStats observed;
  for (int rep = 0; rep < 20; ++rep) {
    dmr::Mesh mesh;
    dmr::build_delaunay(mesh, pts_);
    ThreadPool pool(2);
    SpeculativeExecutor ex(pool, mesh.num_triangle_slots(),
                           dmr::make_refine_operator(mesh, quality_),
                           100 + static_cast<std::uint64_t>(rep));
    const auto fresh = dmr::bad_triangles(mesh, quality_);
    std::vector<TaskId> tasks(fresh.begin(), fresh.end());
    ex.push_initial(tasks);
    observed.add(ex.run_round(m).conflict_ratio());
  }
  EXPECT_NEAR(observed.mean(), predicted.r_bar(m),
              0.12 + 3 * observed.ci95());
}

}  // namespace
}  // namespace optipar
