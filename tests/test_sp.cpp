#include <gtest/gtest.h>

#include <cmath>

#include "apps/sp/formula.hpp"
#include "apps/sp/survey.hpp"
#include "control/hybrid.hpp"

namespace optipar::sp {
namespace {

Formula tiny_sat() {
  // (x0 | x1) & (!x0 | x2) & (!x1 | !x2)
  return Formula(3, {Clause{{{0, true}, {1, true}}},
                     Clause{{{0, false}, {2, true}}},
                     Clause{{{1, false}, {2, false}}}});
}

Formula tiny_unsat() {
  // (x0) & (!x0)
  return Formula(1, {Clause{{{0, true}}}, Clause{{{0, false}}}});
}

// ----------------------------------------------------------------- CNF

TEST(Formula, StructureAndLookup) {
  const auto f = tiny_sat();
  EXPECT_EQ(f.num_vars(), 3u);
  EXPECT_EQ(f.num_clauses(), 3u);
  EXPECT_EQ(f.clauses_of(0), (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(f.clauses_of(2), (std::vector<std::uint32_t>{1, 2}));
}

TEST(Formula, RejectsOutOfRangeLiterals) {
  EXPECT_THROW((void)Formula(1, {Clause{{{5, true}}}}), std::invalid_argument);
}

TEST(Formula, Evaluation) {
  const auto f = tiny_sat();
  EXPECT_TRUE(f.is_satisfied_by({1, 0, 1}));
  EXPECT_FALSE(f.is_satisfied_by({1, 1, 1}));  // clause 3 violated
  EXPECT_THROW((void)f.is_satisfied_by({1, 0}), std::invalid_argument);
}

TEST(Formula, FixVariableSimplifies) {
  const auto f = tiny_sat();
  const auto fixed = f.fix_variable(0, true);
  ASSERT_TRUE(fixed.has_value());
  // Clause 0 satisfied and gone; clause 1 loses its !x0 literal.
  EXPECT_EQ(fixed->num_clauses(), 2u);
  EXPECT_EQ(fixed->clause(0).literals.size(), 1u);
  EXPECT_EQ(fixed->clause(0).literals[0].var, 2u);
}

TEST(Formula, FixVariableDetectsContradiction) {
  const auto f = tiny_unsat();
  EXPECT_FALSE(f.fix_variable(0, true).has_value());
  EXPECT_FALSE(f.fix_variable(0, false).has_value());
}

TEST(RandomKsat, ShapeAndDistinctVars) {
  Rng rng(1);
  const auto f = random_ksat(30, 60, 3, rng);
  EXPECT_EQ(f.num_clauses(), 60u);
  for (const auto& clause : f.clauses()) {
    ASSERT_EQ(clause.literals.size(), 3u);
    EXPECT_NE(clause.literals[0].var, clause.literals[1].var);
    EXPECT_NE(clause.literals[0].var, clause.literals[2].var);
    EXPECT_NE(clause.literals[1].var, clause.literals[2].var);
  }
  EXPECT_THROW((void)random_ksat(2, 5, 3, rng), std::invalid_argument);
}

// ---------------------------------------------------------------- DPLL

TEST(Dpll, SolvesTinySat) {
  const auto solution = dpll_solve(tiny_sat());
  ASSERT_TRUE(solution.has_value());
  EXPECT_TRUE(tiny_sat().is_satisfied_by(*solution));
}

TEST(Dpll, DetectsTinyUnsat) {
  EXPECT_FALSE(dpll_solve(tiny_unsat()).has_value());
}

TEST(Dpll, EmptyFormulaIsSat) {
  const Formula f(4, {});
  const auto solution = dpll_solve(f);
  ASSERT_TRUE(solution.has_value());
  EXPECT_TRUE(f.is_satisfied_by(*solution));
}

TEST(Dpll, AgreesWithBruteForceOnSmallRandomFormulas) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const std::uint32_t n = 8;
    const auto f =
        random_ksat(n, 4 + static_cast<std::uint32_t>(rng.below(36)), 3, rng);
    bool brute_sat = false;
    for (std::uint32_t bits = 0; bits < (1u << n) && !brute_sat; ++bits) {
      std::vector<std::uint8_t> assignment(n);
      for (std::uint32_t v = 0; v < n; ++v) {
        assignment[v] = (bits >> v) & 1;
      }
      brute_sat = f.is_satisfied_by(assignment);
    }
    const auto dpll = dpll_solve(f);
    EXPECT_EQ(dpll.has_value(), brute_sat) << "trial " << trial;
    if (dpll.has_value()) {
      EXPECT_TRUE(f.is_satisfied_by(*dpll));
    }
  }
}

// ------------------------------------------------------------------ SP

TEST(SurveyState, SingleClauseHasNoWarnings) {
  // With no other clauses, every Π^u is 0, so all surveys converge to 0
  // in one sweep regardless of the random initialization.
  const Formula f(3, {Clause{{{0, true}, {1, true}, {2, true}}}});
  Rng rng(2);
  SurveyState state(f, rng);
  SpConfig config;
  const auto sweeps = run_survey_propagation(state, config);
  ASSERT_TRUE(sweeps.has_value());
  EXPECT_LE(*sweeps, 2u);
  EXPECT_LT(state.max_eta(), 1e-12);
}

TEST(SurveyState, ContradictoryUnitsWarnHard) {
  // (x0) & (!x0): each clause warns x0 with survey -> 1.
  Rng rng(3);
  const auto f = tiny_unsat();  // must outlive the SurveyState view
  SurveyState state(f, rng);
  SpConfig config;
  const auto sweeps = run_survey_propagation(state, config);
  ASSERT_TRUE(sweeps.has_value());
  EXPECT_GT(state.eta(0, 0), 0.99);
  EXPECT_GT(state.eta(1, 0), 0.99);
  // The bias sees the (unsatisfiable) 50/50 pull.
  const auto b = state.bias(0);
  EXPECT_NEAR(b.plus, b.minus, 1e-9);
}

TEST(SurveyState, ForcedChainPolarizesBias) {
  // (x0) alone: clause 0 warns x0 toward true, so W+ > W-.
  const Formula f(1, {Clause{{{0, true}}}});
  Rng rng(4);
  SurveyState state(f, rng);
  SpConfig config;
  ASSERT_TRUE(run_survey_propagation(state, config).has_value());
  const auto b = state.bias(0);
  EXPECT_TRUE(b.prefers_true());
  EXPECT_GT(b.plus, 0.99);
}

TEST(SurveyState, SequentialAndSpeculativeAgreeOnTreeFormula) {
  // A tree-shaped (loop-free) factor graph has a unique SP fixed point, so
  // the two execution strategies must land on the same surveys.
  // Chain: (x0|x1) & (!x1|x2) & (!x2|x3) & (!x3|!x4)
  const Formula f(5, {Clause{{{0, true}, {1, true}}},
                      Clause{{{1, false}, {2, true}}},
                      Clause{{{2, false}, {3, true}}},
                      Clause{{{3, false}, {4, false}}}});
  SpConfig config;
  config.tolerance = 1e-8;

  Rng rng_a(5);
  SurveyState sequential(f, rng_a);
  ASSERT_TRUE(run_survey_propagation(sequential, config).has_value());

  Rng rng_b(6);
  SurveyState speculative(f, rng_b);
  ThreadPool pool(4);
  ControllerParams p;
  HybridController controller(p);
  const auto trace = run_survey_propagation_adaptive(speculative, config,
                                                     controller, pool, 77);
  ASSERT_FALSE(trace.steps.empty());
  EXPECT_EQ(trace.steps.back().pending_after, 0u);  // drained = converged
  for (std::uint32_t a = 0; a < f.num_clauses(); ++a) {
    for (std::uint32_t s = 0; s < f.clause(a).literals.size(); ++s) {
      EXPECT_NEAR(sequential.eta(a, s), speculative.eta(a, s), 1e-4)
          << "clause " << a << " slot " << s;
    }
  }
}

// ----------------------------------------------------------------- SID

class SidTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SidTest, SolvesEasyRandom3Sat) {
  Rng rng(GetParam());
  const auto f = random_ksat(40, 80, 3, rng);  // ratio 2.0 << threshold
  SpConfig config;
  const auto result = solve_with_sid(f, config, rng);
  EXPECT_TRUE(result.satisfied);
  EXPECT_TRUE(f.is_satisfied_by(result.assignment));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SidTest, ::testing::Values(11, 22, 33, 44));

TEST(Sid, SpeculativeModeAlsoSolves) {
  Rng rng(55);
  const auto f = random_ksat(40, 90, 3, rng);
  SpConfig config;
  ThreadPool pool(4);
  ControllerParams p;
  HybridController controller(p);
  const auto result = solve_with_sid(f, config, rng, &controller, &pool);
  EXPECT_TRUE(result.satisfied);
  EXPECT_TRUE(f.is_satisfied_by(result.assignment));
  EXPECT_FALSE(result.trace.steps.empty());
}

TEST(Sid, UnsatFormulaReportsUnsatisfied) {
  Rng rng(66);
  const auto result = solve_with_sid(tiny_unsat(), SpConfig{}, rng);
  EXPECT_FALSE(result.satisfied);
}

TEST(Sid, EmptyFormulaIsTriviallySatisfied) {
  Rng rng(77);
  const Formula f(6, {});
  const auto result = solve_with_sid(f, SpConfig{}, rng);
  EXPECT_TRUE(result.satisfied);
}

}  // namespace
}  // namespace optipar::sp
