#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <dirent.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "support/barrier.hpp"

namespace optipar {
namespace {

TEST(ThreadPool, DefaultsToAtLeastOneWorker) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, SubmitRunsTask) {
  ThreadPool pool(2);
  std::atomic<int> hits{0};
  auto f = pool.submit([&] { hits.fetch_add(1); });
  f.get();
  EXPECT_EQ(hits.load(), 1);
}

TEST(ThreadPool, SubmitPropagatesExceptionsThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW((void)f.get(), std::runtime_error);
}

TEST(ThreadPool, ManySubmitsAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> hits{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&] { hits.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(hits.load(), 200);
}

TEST(ThreadPool, ParallelForVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> visits(kN);
  pool.parallel_for(kN, [&](std::size_t i) { visits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(visits[i].load(), 1);
}

TEST(ThreadPool, ParallelForWithGrainVisitsAll) {
  ThreadPool pool(3);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> visits(kN);
  pool.parallel_for(kN, [&](std::size_t i) { visits[i].fetch_add(1); }, 64);
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(visits[i].load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, ParallelForWorksOnSingleThreadPool) {
  ThreadPool pool(1);
  std::atomic<int> sum{0};
  pool.parallel_for(100, [&](std::size_t i) {
    sum.fetch_add(static_cast<int>(i));
  });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPool, RunOnWorkersGivesDistinctLaneIndices) {
  ThreadPool pool(4);
  std::mutex mu;
  std::set<std::size_t> lanes;
  pool.run_on_workers(4, [&](std::size_t lane) {
    const std::lock_guard lock(mu);
    lanes.insert(lane);
  });
  EXPECT_EQ(lanes, (std::set<std::size_t>{0, 1, 2, 3}));
}

TEST(ThreadPool, RunOnWorkersClampsToPoolSizePlusCaller) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.run_on_workers(100, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 3);  // 2 workers + calling thread
}

TEST(ThreadPool, ParallelForPropagatesLaneExceptions) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t i) {
                          if (i == 37) throw std::runtime_error("lane boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, NestedParallelForRunsSeriallyAndPropagatesExceptions) {
  // A fork-join region entered from inside a lane cannot recruit the
  // already-busy workers: it must degrade to serial execution, complete
  // every index, and still transport exceptions out through both levels.
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.parallel_for(4, [&](std::size_t) {
    pool.parallel_for(50, [&](std::size_t i) {
      inner_total.fetch_add(static_cast<int>(i));
    });
  });
  EXPECT_EQ(inner_total.load(), 4 * 1225);

  EXPECT_THROW(pool.parallel_for(2,
                                 [&](std::size_t) {
                                   pool.parallel_for(8, [&](std::size_t i) {
                                     if (i == 5) {
                                       throw std::runtime_error("nested");
                                     }
                                   });
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, SingleWorkerPoolMakesProgressOnEveryPath) {
  ThreadPool pool(1);
  std::atomic<int> sum{0};
  pool.run_on_workers(2, [&](std::size_t lane) {
    sum.fetch_add(static_cast<int>(lane) + 1);
  });
  EXPECT_EQ(sum.load(), 3);  // lanes 0 and 1 both ran
  auto f = pool.submit([&] { sum.fetch_add(10); });
  f.get();
  EXPECT_EQ(sum.load(), 13);
  pool.parallel_for(10, [&](std::size_t) { sum.fetch_add(1); });
  EXPECT_EQ(sum.load(), 23);
}

TEST(ThreadPool, FortyThousandForkJoinsReuseResidentWorkers) {
  // The fork-join path must not create a thread, fd, or queue entry per
  // call — dispatch 10k parallel_for and 10k run_on_workers rounds twice
  // and check the process' thread count stays put.
  ThreadPool pool(2);
  const auto count_threads = [] {
    std::size_t n = 0;
    // /proc/self/task has one entry per live thread on Linux.
    if (auto* d = opendir("/proc/self/task")) {
      while (readdir(d) != nullptr) ++n;
      closedir(d);
    }
    return n;
  };
  std::atomic<std::uint64_t> total{0};
  const auto burst = [&] {
    for (int call = 0; call < 10000; ++call) {
      pool.parallel_for(3, [&](std::size_t) { total.fetch_add(1); });
      pool.run_on_workers(3, [&](std::size_t) { total.fetch_add(1); });
    }
  };
  burst();
  const std::size_t threads_after_warmup = count_threads();
  burst();
  EXPECT_EQ(count_threads(), threads_after_warmup);
  EXPECT_EQ(total.load(), 2u * 10000u * 6u);
}

TEST(SpinBarrier, SynchronizesPhases) {
  constexpr std::size_t kParties = 4;
  ThreadPool pool(kParties - 1);
  SpinBarrier barrier(kParties);
  std::atomic<int> phase_counter{0};
  std::vector<int> seen(kParties, -1);

  pool.run_on_workers(kParties, [&](std::size_t lane) {
    phase_counter.fetch_add(1);
    barrier.arrive_and_wait();
    // After the barrier every party must observe all arrivals.
    seen[lane] = phase_counter.load();
    barrier.arrive_and_wait();
  });
  for (const int s : seen) EXPECT_EQ(s, kParties);
}

TEST(SpinBarrier, IsReusableAcrossManyRounds) {
  constexpr std::size_t kParties = 3;
  ThreadPool pool(kParties - 1);
  SpinBarrier barrier(kParties);
  std::atomic<int> counter{0};
  pool.run_on_workers(kParties, [&](std::size_t) {
    for (int round = 0; round < 50; ++round) {
      counter.fetch_add(1);
      barrier.arrive_and_wait();
    }
  });
  EXPECT_EQ(counter.load(), 150);
}

}  // namespace
}  // namespace optipar
