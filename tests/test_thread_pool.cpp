#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "support/barrier.hpp"

namespace optipar {
namespace {

TEST(ThreadPool, DefaultsToAtLeastOneWorker) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, SubmitRunsTask) {
  ThreadPool pool(2);
  std::atomic<int> hits{0};
  auto f = pool.submit([&] { hits.fetch_add(1); });
  f.get();
  EXPECT_EQ(hits.load(), 1);
}

TEST(ThreadPool, SubmitPropagatesExceptionsThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW((void)f.get(), std::runtime_error);
}

TEST(ThreadPool, ManySubmitsAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> hits{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&] { hits.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(hits.load(), 200);
}

TEST(ThreadPool, ParallelForVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> visits(kN);
  pool.parallel_for(kN, [&](std::size_t i) { visits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(visits[i].load(), 1);
}

TEST(ThreadPool, ParallelForWithGrainVisitsAll) {
  ThreadPool pool(3);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> visits(kN);
  pool.parallel_for(kN, [&](std::size_t i) { visits[i].fetch_add(1); }, 64);
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(visits[i].load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, ParallelForWorksOnSingleThreadPool) {
  ThreadPool pool(1);
  std::atomic<int> sum{0};
  pool.parallel_for(100, [&](std::size_t i) {
    sum.fetch_add(static_cast<int>(i));
  });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPool, RunOnWorkersGivesDistinctLaneIndices) {
  ThreadPool pool(4);
  std::mutex mu;
  std::set<std::size_t> lanes;
  pool.run_on_workers(4, [&](std::size_t lane) {
    const std::lock_guard lock(mu);
    lanes.insert(lane);
  });
  EXPECT_EQ(lanes, (std::set<std::size_t>{0, 1, 2, 3}));
}

TEST(ThreadPool, RunOnWorkersClampsToPoolSizePlusCaller) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.run_on_workers(100, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 3);  // 2 workers + calling thread
}

TEST(SpinBarrier, SynchronizesPhases) {
  constexpr std::size_t kParties = 4;
  ThreadPool pool(kParties - 1);
  SpinBarrier barrier(kParties);
  std::atomic<int> phase_counter{0};
  std::vector<int> seen(kParties, -1);

  pool.run_on_workers(kParties, [&](std::size_t lane) {
    phase_counter.fetch_add(1);
    barrier.arrive_and_wait();
    // After the barrier every party must observe all arrivals.
    seen[lane] = phase_counter.load();
    barrier.arrive_and_wait();
  });
  for (const int s : seen) EXPECT_EQ(s, kParties);
}

TEST(SpinBarrier, IsReusableAcrossManyRounds) {
  constexpr std::size_t kParties = 3;
  ThreadPool pool(kParties - 1);
  SpinBarrier barrier(kParties);
  std::atomic<int> counter{0};
  pool.run_on_workers(kParties, [&](std::size_t) {
    for (int round = 0; round < 50; ++round) {
      counter.fetch_add(1);
      barrier.arrive_and_wait();
    }
  });
  EXPECT_EQ(counter.load(), 150);
}

}  // namespace
}  // namespace optipar
