#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "graph/algos.hpp"

namespace optipar {
namespace {

TEST(Gnm, ExactEdgeCountAndValidity) {
  Rng rng(1);
  const auto g = gen::gnm_random(100, 250, rng);
  EXPECT_EQ(g.num_nodes(), 100u);
  EXPECT_EQ(g.num_edges(), 250u);
  EXPECT_TRUE(g.validate());
}

TEST(Gnm, RejectsImpossibleEdgeCounts) {
  Rng rng(2);
  EXPECT_THROW((void)gen::gnm_random(4, 7, rng), std::invalid_argument);  // > 6
  EXPECT_THROW((void)gen::gnm_random(1, 1, rng), std::invalid_argument);
}

TEST(Gnm, CompleteGraphCase) {
  Rng rng(3);
  const auto g = gen::gnm_random(6, 15, rng);  // all pairs
  EXPECT_EQ(g.num_edges(), 15u);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 5u);
}

TEST(Gnm, SameSeedSameGraph) {
  Rng a(42);
  Rng b(42);
  const auto g1 = gen::gnm_random(50, 100, a);
  const auto g2 = gen::gnm_random(50, 100, b);
  EXPECT_EQ(g1.edges(), g2.edges());
}

TEST(RandomWithAverageDegree, HitsTargetDegree) {
  Rng rng(4);
  const auto g = gen::random_with_average_degree(2000, 16.0, rng);
  EXPECT_NEAR(g.average_degree(), 16.0, 0.01);
}

TEST(Gnp, ZeroAndOneProbabilities) {
  Rng rng(5);
  const auto empty = gen::gnp_random(20, 0.0, rng);
  EXPECT_EQ(empty.num_edges(), 0u);
  const auto full = gen::gnp_random(20, 1.0, rng);
  EXPECT_EQ(full.num_edges(), 190u);
}

TEST(Gnp, EdgeCountNearExpectation) {
  Rng rng(6);
  const auto g = gen::gnp_random(500, 0.05, rng);
  const double expected = 0.05 * 500 * 499 / 2;  // ≈ 6237
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected,
              5 * std::sqrt(expected));
  EXPECT_TRUE(g.validate());
}

TEST(Gnp, RejectsBadProbability) {
  Rng rng(7);
  EXPECT_THROW((void)gen::gnp_random(5, -0.1, rng), std::invalid_argument);
  EXPECT_THROW((void)gen::gnp_random(5, 1.1, rng), std::invalid_argument);
}

TEST(UnionOfCliques, StructureOfKdn) {
  const auto g = gen::union_of_cliques(20, 4);  // 4 cliques of size 5
  EXPECT_EQ(g.num_nodes(), 20u);
  EXPECT_DOUBLE_EQ(g.average_degree(), 4.0);
  for (NodeId v = 0; v < 20; ++v) EXPECT_EQ(g.degree(v), 4u);
  const auto comps = connected_components(g);
  EXPECT_EQ(comps.count, 4u);
  EXPECT_TRUE(g.validate());
}

TEST(UnionOfCliques, DivisibilityEnforced) {
  EXPECT_THROW((void)gen::union_of_cliques(21, 4), std::invalid_argument);
}

TEST(UnionOfCliques, DegenerateSingletons) {
  const auto g = gen::union_of_cliques(10, 0);  // 10 isolated nodes
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(CliquePlusIsolated, Example1Family) {
  const auto g = gen::clique_plus_isolated(16, 4);  // K16 + D4
  EXPECT_EQ(g.num_nodes(), 20u);
  EXPECT_EQ(g.num_edges(), 120u);
  for (NodeId v = 0; v < 16; ++v) EXPECT_EQ(g.degree(v), 15u);
  for (NodeId v = 16; v < 20; ++v) EXPECT_EQ(g.degree(v), 0u);
}

TEST(Complete, AllPairs) {
  const auto g = gen::complete(7);
  EXPECT_EQ(g.num_edges(), 21u);
  EXPECT_EQ(triangle_count(g), 35u);  // C(7,3)
}

TEST(Star, HubAndLeaves) {
  const auto g = gen::star(6);
  EXPECT_EQ(g.num_nodes(), 7u);
  EXPECT_EQ(g.degree(0), 6u);
  for (NodeId v = 1; v <= 6; ++v) EXPECT_EQ(g.degree(v), 1u);
}

TEST(PathAndCycle, DegreesAndCounts) {
  const auto p = gen::path(10);
  EXPECT_EQ(p.num_edges(), 9u);
  EXPECT_EQ(p.degree(0), 1u);
  EXPECT_EQ(p.degree(5), 2u);
  const auto c = gen::cycle(10);
  EXPECT_EQ(c.num_edges(), 10u);
  for (NodeId v = 0; v < 10; ++v) EXPECT_EQ(c.degree(v), 2u);
  EXPECT_THROW((void)gen::cycle(2), std::invalid_argument);
}

TEST(Grid, CornerEdgeInteriorDegrees) {
  const auto g = gen::grid_2d(4, 5);
  EXPECT_EQ(g.num_nodes(), 20u);
  EXPECT_EQ(g.num_edges(), 31u);  // 4*4 + 3*5 horizontal+vertical
  EXPECT_EQ(g.degree(0), 2u);     // corner
  EXPECT_EQ(g.degree(1), 3u);     // edge
  EXPECT_EQ(g.degree(6), 4u);     // interior (row 1, col 1)
}

TEST(Torus, FourRegular) {
  const auto g = gen::torus_2d(4, 4);
  for (NodeId v = 0; v < 16; ++v) EXPECT_EQ(g.degree(v), 4u);
  EXPECT_EQ(g.num_edges(), 32u);
  EXPECT_THROW((void)gen::torus_2d(2, 5), std::invalid_argument);
}

class RandomRegularTest
    : public ::testing::TestWithParam<std::pair<NodeId, std::uint32_t>> {};

TEST_P(RandomRegularTest, ExactDegreeEverywhere) {
  const auto [n, d] = GetParam();
  Rng rng(1000 + n + d);
  const auto g = gen::random_regular(n, d, rng);
  EXPECT_EQ(g.num_nodes(), n);
  for (NodeId v = 0; v < n; ++v) EXPECT_EQ(g.degree(v), d);
  EXPECT_TRUE(g.validate());
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomRegularTest,
                         ::testing::Values(std::pair{10u, 3u},
                                           std::pair{50u, 4u},
                                           std::pair{100u, 6u},
                                           std::pair{64u, 2u}));

TEST(RandomRegular, RejectsOddTotalsAndBigDegrees) {
  Rng rng(8);
  EXPECT_THROW((void)gen::random_regular(5, 3, rng), std::invalid_argument);
  EXPECT_THROW((void)gen::random_regular(4, 4, rng), std::invalid_argument);
}

TEST(Rmat, ProducesRequestedEdgesWithinBudget) {
  Rng rng(9);
  const auto g = gen::rmat(256, 1000, 0.45, 0.22, 0.22, rng);
  EXPECT_EQ(g.num_nodes(), 256u);
  EXPECT_GE(g.num_edges(), 900u);  // a few duplicates may be retried away
  EXPECT_TRUE(g.validate());
}

TEST(Rmat, SkewedParametersGiveSkewedDegrees) {
  Rng rng(10);
  const auto g = gen::rmat(512, 2000, 0.7, 0.1, 0.1, rng);
  const auto stats = degree_stats(g);
  EXPECT_GT(stats.max, 3 * stats.average);  // heavy head
}

TEST(Rmat, RejectsBadProbabilities) {
  Rng rng(11);
  EXPECT_THROW((void)gen::rmat(16, 10, 0.6, 0.3, 0.3, rng), std::invalid_argument);
}

TEST(BarabasiAlbert, MinimumDegreeIsK) {
  Rng rng(12);
  const auto g = gen::barabasi_albert(300, 3, rng);
  EXPECT_EQ(g.num_nodes(), 300u);
  const auto stats = degree_stats(g);
  EXPECT_GE(stats.min, 3u);
  EXPECT_GT(stats.max, 10u);  // hubs emerge
  EXPECT_TRUE(g.validate());
}

TEST(BarabasiAlbert, RejectsTooFewNodes) {
  Rng rng(13);
  EXPECT_THROW((void)gen::barabasi_albert(3, 3, rng), std::invalid_argument);
}

}  // namespace
}  // namespace optipar
