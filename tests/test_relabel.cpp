#include "graph/relabel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "graph/generators.hpp"
#include "model/conflict_ratio.hpp"
#include "support/rng.hpp"

namespace optipar {
namespace {

TEST(RelabelOrderNames, ParseRoundTrip) {
  for (const auto order : {RelabelOrder::kNone, RelabelOrder::kBfs,
                           RelabelOrder::kDegree}) {
    EXPECT_EQ(parse_relabel_order(relabel_order_name(order)), order);
  }
  EXPECT_THROW((void)parse_relabel_order("hilbert"), std::invalid_argument);
}

TEST(Relabeling, IdentityIsIdentity) {
  const auto r = identity_relabeling(17);
  EXPECT_TRUE(r.validate());
  EXPECT_TRUE(r.is_identity());
  EXPECT_EQ(r.to_internal(5), 5u);
  EXPECT_EQ(r.to_external(5), 5u);
}

/// Relabeled graph must be isomorphic to the original under the map.
void expect_isomorphic(const CsrGraph& g, const CsrGraph& h,
                       const Relabeling& r) {
  ASSERT_TRUE(r.validate());
  ASSERT_EQ(h.num_nodes(), g.num_nodes());
  ASSERT_EQ(h.num_edges(), g.num_edges());
  ASSERT_TRUE(h.validate());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(h.degree(r.to_internal(u)), g.degree(u));
    for (const NodeId v : g.neighbors(u)) {
      EXPECT_TRUE(h.has_edge(r.to_internal(u), r.to_internal(v)));
    }
  }
}

TEST(Relabel, BfsPreservesIsomorphism) {
  Rng rng(1);
  const auto g = gen::rmat(300, 1200, 0.55, 0.15, 0.15, rng);
  const auto rl = relabel(g, RelabelOrder::kBfs);
  expect_isomorphic(g, rl.graph, rl.map);
}

TEST(Relabel, DegreePreservesIsomorphism) {
  Rng rng(2);
  const auto g = gen::barabasi_albert(400, 4, rng);
  const auto rl = relabel(g, RelabelOrder::kDegree);
  expect_isomorphic(g, rl.graph, rl.map);
}

TEST(Relabel, DegreeOrderIsNonIncreasing) {
  Rng rng(3);
  const auto g = gen::rmat(256, 1024, 0.6, 0.15, 0.1, rng);
  const auto rl = relabel(g, RelabelOrder::kDegree);
  for (NodeId v = 1; v < rl.graph.num_nodes(); ++v) {
    EXPECT_GE(rl.graph.degree(v - 1), rl.graph.degree(v));
  }
}

TEST(Relabel, BfsPacksPathNeighborsTightly) {
  // A path whose labels were scattered by a random permutation: BFS
  // relabeling must bring every edge's endpoints within 2 ids of each
  // other (the two frontier sides of a path BFS).
  Rng rng(4);
  const NodeId n = 200;
  auto perm = rng.permutation(n);
  EdgeList edges;
  for (NodeId i = 0; i + 1 < n; ++i) edges.emplace_back(perm[i], perm[i + 1]);
  const auto scattered = CsrGraph::from_edges(n, edges);
  const auto rl = relabel(scattered, RelabelOrder::kBfs);
  for (const auto& [u, v] : rl.graph.edges()) {
    EXPECT_LE(v - u, 2u) << "edge (" << u << "," << v << ")";
  }
}

TEST(Relabel, BfsCoversAllComponents) {
  // Disconnected graph: every node must still get exactly one new id.
  const auto g = gen::union_of_cliques(60, 5);
  const auto r = bfs_relabeling(g);
  EXPECT_TRUE(r.validate());
  std::vector<NodeId> sorted = r.new_to_old;
  std::sort(sorted.begin(), sorted.end());
  for (NodeId v = 0; v < 60; ++v) EXPECT_EQ(sorted[v], v);
}

TEST(Relabel, NoneReturnsSameGraphAndIdentityMap) {
  Rng rng(5);
  const auto g = gen::gnm_random(50, 120, rng);
  const auto rl = relabel(g, RelabelOrder::kNone);
  EXPECT_TRUE(rl.map.is_identity());
  EXPECT_EQ(rl.graph.edges(), g.edges());
}

TEST(Relabel, ApplyRejectsNonBijection) {
  const auto g = gen::path(4);
  Relabeling bad;
  bad.old_to_new = {0, 0, 1, 2};
  bad.new_to_old = {0, 2, 3, 3};
  EXPECT_THROW((void)apply_relabeling(g, bad), std::invalid_argument);
  Relabeling wrong_size = identity_relabeling(3);
  EXPECT_THROW((void)apply_relabeling(g, wrong_size), std::invalid_argument);
}

TEST(Relabel, ConflictStatisticsAreLabelInvariant) {
  // On K_n the curve is deterministic (k(π, m) = m − 1), so relabeling
  // must reproduce it exactly; on a random graph the relabeled estimate
  // must agree within combined CIs.
  const auto k = gen::complete(12);
  Rng rng_a(6);
  const auto curve_k = estimate_conflict_curve(
      relabel(k, RelabelOrder::kBfs).graph, 10, rng_a);
  for (std::uint32_t m = 1; m <= 12; ++m) {
    EXPECT_DOUBLE_EQ(curve_k.k_bar(m), static_cast<double>(m - 1));
  }

  Rng rng_g(7);
  const auto g = gen::gnm_random(150, 600, rng_g);
  Rng rng_b(8);
  Rng rng_c(9);
  const auto plain = estimate_conflict_curve(g, 3000, rng_b);
  const auto relabeled = estimate_conflict_curve(
      relabel(g, RelabelOrder::kDegree).graph, 3000, rng_c);
  for (const std::uint32_t m : {2u, 30u, 75u, 150u}) {
    EXPECT_NEAR(relabeled.r_bar(m), plain.r_bar(m),
                4 * (relabeled.r_bar_ci95(m) + plain.r_bar_ci95(m)) + 1e-3)
        << "m=" << m;
  }
}

}  // namespace
}  // namespace optipar
