#include "model/theory.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/algos.hpp"
#include "graph/generators.hpp"
#include "model/conflict_ratio.hpp"

namespace optipar {
namespace {

TEST(Theory, TuranBoundBasics) {
  EXPECT_DOUBLE_EQ(theory::turan_bound(100, 4), 20.0);
  EXPECT_DOUBLE_EQ(theory::turan_bound(100, 0), 100.0);
  EXPECT_THROW((void)theory::turan_bound(-1, 2), std::invalid_argument);
}

TEST(Theory, InitialDerivative) {
  EXPECT_DOUBLE_EQ(theory::initial_derivative(2000, 16),
                   16.0 / (2.0 * 1999.0));
  EXPECT_THROW((void)theory::initial_derivative(1, 0), std::invalid_argument);
}

TEST(Theory, PrNodeInInducedMisDegenerateCases) {
  // m = 0: never selected, probability 0.
  EXPECT_DOUBLE_EQ(theory::pr_node_in_induced_mis(10, 3, 0), 0.0);
  // Degree 0, m = n: always in the IS -> probability 1.
  EXPECT_NEAR(theory::pr_node_in_induced_mis(10, 0, 10), 1.0, 1e-12);
  // Degree 0, m < n: probability m/n (just selection probability).
  EXPECT_NEAR(theory::pr_node_in_induced_mis(10, 0, 4), 0.4, 1e-12);
  EXPECT_THROW((void)theory::pr_node_in_induced_mis(5, 1, 6),
               std::invalid_argument);
}

TEST(Theory, PrNodeInInducedMisIsDecreasingInDegree) {
  for (std::uint32_t d = 0; d + 1 < 20; ++d) {
    EXPECT_GE(theory::pr_node_in_induced_mis(20, d, 10),
              theory::pr_node_in_induced_mis(20, d + 1, 10));
  }
}

TEST(Theory, BmEqualsEmOnUnionOfCliques) {
  // For the worst-case graph K_d^n the paper's eq. (21) shows
  // b_m(K_d^n) = EM_m(K_d^n); our two independent implementations (the
  // per-degree sum and the hypergeometric closed form) must agree.
  const std::uint32_t n = 60, d = 4;
  std::vector<std::uint32_t> degrees(n, d);
  for (const std::uint32_t m : {1u, 3u, 10u, 30u, 60u}) {
    EXPECT_NEAR(theory::b_m(degrees, m), theory::em_union_of_cliques(n, d, m),
                1e-9)
        << "m=" << m;
  }
}

TEST(Theory, Thm2OrderingHoldsOnRandomGraphs) {
  // EM_m(G) >= b_m(G) >= b_m(K_d^n) = EM_m(K_d^n).
  Rng rng(1);
  const std::uint32_t n = 60, d = 4;
  const auto g = gen::gnm_random(n, n * d / 2, rng);
  ASSERT_DOUBLE_EQ(g.average_degree(), static_cast<double>(d));
  for (const std::uint32_t m : {5u, 15u, 30u, 60u}) {
    const double b_g = theory::b_m(g, m);
    const double em_kdn = theory::em_union_of_cliques(n, d, m);
    EXPECT_GE(b_g, em_kdn - 1e-9) << "m=" << m;  // Jensen step (eq. 22)
    const auto em_g = estimate_committed_at(g, m, 4000, rng);
    EXPECT_GE(em_g.mean() + 3 * em_g.ci95(), b_g) << "m=" << m;
  }
}

TEST(Theory, EmUnionOfCliquesBoundaryValues) {
  const std::uint32_t n = 30, d = 4;  // s = 6 cliques
  // m = 0: nothing launched.
  EXPECT_DOUBLE_EQ(theory::em_union_of_cliques(n, d, 0), 0.0);
  // m = 1: exactly one committed.
  EXPECT_NEAR(theory::em_union_of_cliques(n, d, 1), 1.0, 1e-12);
  // m = n: every clique is hit -> s committed.
  EXPECT_NEAR(theory::em_union_of_cliques(n, d, n), 6.0, 1e-12);
  EXPECT_THROW((void)theory::em_union_of_cliques(31, 4, 1), std::invalid_argument);
  EXPECT_THROW((void)theory::em_union_of_cliques(30, 4, 31), std::invalid_argument);
}

TEST(Theory, EmUnionOfCliquesIsMonotoneInM) {
  for (std::uint32_t m = 0; m < 60; ++m) {
    EXPECT_LE(theory::em_union_of_cliques(60, 5, m),
              theory::em_union_of_cliques(60, 5, m + 1) + 1e-12);
  }
}

TEST(Theory, ConflictRatioBoundExactIsMonotoneAndInUnitInterval) {
  double prev = 0.0;
  for (std::uint32_t m = 1; m <= 100; ++m) {
    const double r = theory::conflict_ratio_bound_exact(100, 4, m);
    EXPECT_GE(r, prev - 1e-12);
    EXPECT_GE(r, 0.0);
    EXPECT_LT(r, 1.0);
    prev = r;
  }
}

TEST(Theory, Cor2ApproxTracksExactForLargeN) {
  // Use n divisible by d+1: 2006 = 17 * 118.
  for (const std::uint32_t m : {10u, 50u, 100u, 500u, 1000u}) {
    const double exact = theory::conflict_ratio_bound_exact(2006, 16, m);
    const double approx = theory::conflict_ratio_bound_approx(2006, 16, m);
    EXPECT_NEAR(exact, approx, 0.01) << "m=" << m;
  }
}

TEST(Theory, Cor3AlphaFormAgreesWithCor2) {
  // Setting m = αn/(d+1) in Cor. 2 gives Cor. 3's bound.
  const double n = 1700, d = 16;  // n/(d+1) = 100
  for (const double alpha : {0.25, 0.5, 1.0, 2.0}) {
    const double m = alpha * n / (d + 1.0);
    EXPECT_NEAR(theory::conflict_ratio_bound_approx(n, d, m),
                theory::conflict_ratio_bound_alpha(alpha, d), 1e-9);
  }
}

TEST(Theory, Cor3LimitDominatesFiniteD) {
  // (1 − α/(d+1))^{d+1} increases to e^{−α}, so the limit bound dominates.
  for (const double alpha : {0.3, 0.7, 1.5}) {
    for (const double d : {4.0, 16.0, 64.0}) {
      EXPECT_LE(theory::conflict_ratio_bound_alpha(alpha, d),
                theory::conflict_ratio_bound_alpha_limit(alpha) + 1e-12);
    }
  }
}

TEST(Theory, PaperHeadlineNumberTwentyOnePointThreePercent) {
  // §4: "using m = n/(2(d+1)) processors we will have at most a conflict
  // ratio of 21.3%", i.e. the α = 1/2 limit bound.
  EXPECT_NEAR(theory::conflict_ratio_bound_alpha_limit(0.5), 0.213, 0.0005);
}

TEST(Theory, AlphaLimitIsIncreasingFromZero) {
  EXPECT_NEAR(theory::conflict_ratio_bound_alpha_limit(1e-9), 0.0, 1e-6);
  double prev = 0.0;
  for (double alpha = 0.1; alpha <= 5.0; alpha += 0.1) {
    const double b = theory::conflict_ratio_bound_alpha_limit(alpha);
    EXPECT_GT(b, prev);
    prev = b;
  }
}

TEST(Theory, AlphaForTargetRatioInvertsTheLimit) {
  for (const double rho : {0.1, 0.213, 0.25, 0.3, 0.5}) {
    const double alpha = theory::alpha_for_target_ratio(rho);
    EXPECT_NEAR(theory::conflict_ratio_bound_alpha_limit(alpha), rho, 1e-6);
  }
  EXPECT_THROW((void)theory::alpha_for_target_ratio(0.0), std::invalid_argument);
  EXPECT_THROW((void)theory::alpha_for_target_ratio(1.0), std::invalid_argument);
}

TEST(Theory, WarmStartRespectsWorstCase) {
  // The warm start must keep even the worst-case (K_d^n) ratio under rho.
  const std::uint32_t n = 1700;
  const std::uint32_t d = 16;
  const double rho = 0.25;
  const auto m0 = theory::warm_start_m(n, d, rho);
  EXPECT_GE(m0, 2u);
  EXPECT_LE(theory::conflict_ratio_bound_exact(n, d, m0), rho + 0.01);
}

TEST(Theory, WarmStartFloorsAtTwo) {
  EXPECT_EQ(theory::warm_start_m(10, 100.0, 0.2), 2u);
}

TEST(Theory, TuranHoldsForBm) {
  // b_n(G) (full launch) is exactly Turán's random-greedy expectation and
  // must respect n/(d+1) for regular degree sequences.
  std::vector<std::uint32_t> degrees(50, 6);
  EXPECT_GE(theory::b_m(degrees, 50), theory::turan_bound(50, 6) - 1e-9);
}

}  // namespace
}  // namespace optipar
