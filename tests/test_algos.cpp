#include "graph/algos.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/generators.hpp"

namespace optipar {
namespace {

TEST(DegreeStats, OnKnownGraph) {
  const auto g = gen::star(4);  // hub degree 4, leaves degree 1
  const auto s = degree_stats(g);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 4u);
  EXPECT_DOUBLE_EQ(s.average, 8.0 / 5.0);
  // Variance: E[d^2] - E[d]^2 = (16+4)/5 - (1.6)^2 = 4 - 2.56.
  EXPECT_NEAR(s.variance, 1.44, 1e-12);
}

TEST(GreedyMis, FullIdentityOrderOnPath) {
  const auto g = gen::path(5);
  std::vector<NodeId> order = {0, 1, 2, 3, 4};
  const auto mis = greedy_mis(g, order);
  EXPECT_EQ(mis, (std::vector<NodeId>{0, 2, 4}));
}

TEST(GreedyMis, OrderMatters) {
  const auto g = gen::path(5);
  std::vector<NodeId> order = {1, 3, 0, 2, 4};
  const auto mis = greedy_mis(g, order);
  EXPECT_EQ(mis, (std::vector<NodeId>{1, 3}));
}

TEST(GreedyMis, RejectsDuplicatesAndBadIds) {
  const auto g = gen::path(3);
  EXPECT_THROW((void)greedy_mis(g, std::vector<NodeId>{0, 0}),
               std::invalid_argument);
  EXPECT_THROW((void)greedy_mis(g, std::vector<NodeId>{9}), std::invalid_argument);
}

TEST(GreedyMis, PartialOrderGivesIndependentButNotNecessarilyMaximal) {
  const auto g = gen::path(6);
  std::vector<NodeId> order = {1};  // only one active node
  const auto mis = greedy_mis(g, order);
  EXPECT_TRUE(is_independent_set(g, mis));
  EXPECT_FALSE(is_maximal_independent_set(g, mis));
}

class RandomGreedyMisTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomGreedyMisTest, AlwaysMaximalIndependent) {
  Rng rng(GetParam());
  const auto g = gen::gnm_random(80, 200, rng);
  for (int trial = 0; trial < 10; ++trial) {
    const auto mis = random_greedy_mis(g, rng);
    EXPECT_TRUE(is_independent_set(g, mis));
    EXPECT_TRUE(is_maximal_independent_set(g, mis));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGreedyMisTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(RandomGreedyMis, SatisfiesTuranBoundOnAverage) {
  Rng rng(11);
  const auto g = gen::gnm_random(200, 800, rng);  // d = 8
  const double turan = 200.0 / (g.average_degree() + 1.0);
  double total = 0.0;
  constexpr int kTrials = 200;
  for (int t = 0; t < kTrials; ++t) {
    total += static_cast<double>(random_greedy_mis(g, rng).size());
  }
  EXPECT_GE(total / kTrials, turan - 0.5);  // tiny slack for MC noise
}

TEST(IndependentSet, DetectsViolations) {
  const auto g = gen::path(4);
  EXPECT_TRUE(is_independent_set(g, std::vector<NodeId>{0, 2}));
  EXPECT_FALSE(is_independent_set(g, std::vector<NodeId>{0, 1}));
  EXPECT_FALSE(is_independent_set(g, std::vector<NodeId>{0, 0}));  // dup
  EXPECT_FALSE(is_independent_set(g, std::vector<NodeId>{9}));     // range
}

TEST(MaximalIndependentSet, DetectsExtendableSets) {
  const auto g = gen::path(5);
  EXPECT_TRUE(
      is_maximal_independent_set(g, std::vector<NodeId>{0, 2, 4}));
  EXPECT_TRUE(is_maximal_independent_set(g, std::vector<NodeId>{1, 3}));
  EXPECT_FALSE(is_maximal_independent_set(g, std::vector<NodeId>{0, 2}));
}

TEST(ConnectedComponents, CountsAndLabels) {
  const auto g = gen::union_of_cliques(12, 2);  // 4 triangles
  const auto comps = connected_components(g);
  EXPECT_EQ(comps.count, 4u);
  EXPECT_EQ(comps.id[0], comps.id[1]);
  EXPECT_EQ(comps.id[0], comps.id[2]);
  EXPECT_NE(comps.id[0], comps.id[3]);
}

TEST(ConnectedComponents, IsolatedNodesAreOwnComponents) {
  const auto g = CsrGraph::from_edges(4, {{0, 1}});
  const auto comps = connected_components(g);
  EXPECT_EQ(comps.count, 3u);
}

TEST(TriangleCount, KnownValues) {
  EXPECT_EQ(triangle_count(gen::complete(4)), 4u);
  EXPECT_EQ(triangle_count(gen::complete(6)), 20u);
  EXPECT_EQ(triangle_count(gen::path(10)), 0u);
  EXPECT_EQ(triangle_count(gen::cycle(3)), 1u);
  EXPECT_EQ(triangle_count(gen::cycle(5)), 0u);
  EXPECT_EQ(triangle_count(gen::union_of_cliques(20, 4)), 4u * 10u);
}

}  // namespace
}  // namespace optipar
