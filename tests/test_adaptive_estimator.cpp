#include "model/adaptive_estimator.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "model/theory.hpp"
#include "sim/run_loop.hpp"

namespace optipar {
namespace {

AdaptiveConfig plain_config() {
  AdaptiveConfig cfg;
  cfg.antithetic = false;
  cfg.control_variates = false;
  return cfg;
}

// ---------------------------------------------------------------------------
// Stream compatibility of the fixed-trial point estimators: all three are
// views of the SAME per-trial simulation, so identical seeds must produce
// identical draw sequences and bit-identical statistics.

TEST(EstimatorStreamCompat, PointEstimatorsShareOneDrawStream) {
  Rng gen_rng(31);
  const auto g = gen::gnm_random(120, 600, gen_rng);
  const std::uint32_t m = 40, trials = 500;

  Rng r1(77), r2(77), r3(77);
  const auto r_only = estimate_r_at(g, m, trials, r1);
  const auto committed_only = estimate_committed_at(g, m, trials, r2);
  const auto both = estimate_round_point(g, m, trials, r3);

  EXPECT_EQ(r_only.count(), trials);
  EXPECT_DOUBLE_EQ(r_only.mean(), both.r.mean());
  EXPECT_DOUBLE_EQ(r_only.variance(), both.r.variance());
  EXPECT_DOUBLE_EQ(committed_only.mean(), both.committed.mean());
  EXPECT_DOUBLE_EQ(committed_only.variance(), both.committed.variance());
  // The two statistics are two views of one outcome per trial (the means
  // agree up to accumulation rounding, not bitwise: they average different
  // per-trial values).
  EXPECT_NEAR(both.committed.mean(), m * (1.0 - both.r.mean()), 1e-9);
  // And the generators must have consumed identical draws.
  const auto next1 = r1(), next2 = r2(), next3 = r3();
  EXPECT_EQ(next1, next2);
  EXPECT_EQ(next2, next3);
}

// ---------------------------------------------------------------------------
// Antithetic pairing must be mean-preserving: reverse(π) is itself a
// uniform permutation, so on K_d^n — where Thm. 3 gives the exact answer —
// the paired estimate must agree with theory within its reported CI.

TEST(AdaptiveCurve, AntitheticIsMeanPreservingOnKdn) {
  const std::uint32_t n = 120, d = 5;
  const auto g = gen::union_of_cliques(n, d);
  AdaptiveConfig cfg = plain_config();
  cfg.antithetic = true;  // antithetic WITHOUT control variates
  cfg.epsilon = 0.004;
  cfg.max_sweeps = 1u << 18;
  const auto est = estimate_conflict_curve_adaptive(g, cfg, 5);
  ASSERT_TRUE(est.converged);
  for (const std::uint32_t m : {2u, 10u, 30u, 60u, 120u}) {
    const double exact = theory::em_union_of_cliques(n, d, m);
    EXPECT_NEAR(est.curve.expected_committed(m), exact,
                4 * est.curve.abort_stats[m].ci95() + 1e-9)
        << "m=" << m;
  }
}

TEST(AdaptiveCurve, AntitheticAgreesWithPlainSampling) {
  Rng gen_rng(32);
  const auto g = gen::gnm_random(150, 900, gen_rng);
  AdaptiveConfig plain = plain_config();
  plain.epsilon = 0.005;
  AdaptiveConfig anti = plain;
  anti.antithetic = true;
  const auto a = estimate_conflict_curve_adaptive(g, plain, 9);
  const auto b = estimate_conflict_curve_adaptive(g, anti, 10);
  ASSERT_TRUE(a.converged);
  ASSERT_TRUE(b.converged);
  for (const std::uint32_t m : {2u, 40u, 75u, 150u}) {
    EXPECT_NEAR(a.curve.r_bar(m), b.curve.r_bar(m),
                4 * (a.curve.r_bar_ci95(m) + b.curve.r_bar_ci95(m)) + 1e-3)
        << "m=" << m;
  }
}

// ---------------------------------------------------------------------------
// Control variates: the clique closed form makes K_d^n exact (zero
// variance, immediate convergence), and the precomputed expectation must
// match Thm. 3 analytically.

TEST(CliqueControlVariate, ExpectedAbortsMatchThm3OnKdn) {
  const std::uint32_t n = 126, d = 8;
  const auto g = gen::union_of_cliques(n, d);
  const auto cv = build_clique_control_variate(g);
  EXPECT_TRUE(cv.active());
  EXPECT_EQ(cv.clique_nodes, n);
  EXPECT_EQ(cv.num_clique_comps, n / (d + 1));
  for (std::uint32_t m = 1; m <= n; ++m) {
    const double exact_aborts =
        static_cast<double>(m) - theory::em_union_of_cliques(n, d, m);
    EXPECT_NEAR(cv.expected_aborts[m], exact_aborts, 1e-9) << "m=" << m;
  }
}

TEST(CliqueControlVariate, IgnoresNonCliqueAndSingletonComponents) {
  // path(4) is connected but not a clique; isolated nodes are K_1 with a
  // contribution of exactly zero — neither may be marked.
  Rng rng(33);
  const auto g = CsrGraph::from_edges(
      10, {{0, 1}, {1, 2}, {2, 3},  // path component
           {4, 5}, {4, 6}, {5, 6}});  // triangle component; 7..9 isolated
  const auto cv = build_clique_control_variate(g);
  EXPECT_TRUE(cv.active());
  EXPECT_EQ(cv.num_clique_comps, 1u);  // just the triangle
  EXPECT_EQ(cv.clique_nodes, 3u);
  for (NodeId v : {0u, 1u, 2u, 3u, 7u, 8u, 9u}) {
    EXPECT_EQ(cv.clique_comp[v], CliqueControlVariate::kNotClique);
  }
  for (NodeId v : {4u, 5u, 6u}) {
    EXPECT_NE(cv.clique_comp[v], CliqueControlVariate::kNotClique);
  }
}

TEST(AdaptiveCurve, ControlVariatesAreExactOnKdn) {
  const std::uint32_t n = 204, d = 16;
  const auto g = gen::union_of_cliques(n, d);
  AdaptiveConfig cfg;  // defaults: antithetic + control variates
  cfg.epsilon = 1e-6;  // even a brutal precision target costs min_samples
  const auto est = estimate_conflict_curve_adaptive(g, cfg, 3);
  EXPECT_TRUE(est.converged);
  EXPECT_EQ(est.samples, cfg.min_samples);
  EXPECT_EQ(est.sweeps, cfg.min_samples * 2);
  EXPECT_EQ(est.worst_ci, 0.0);
  EXPECT_DOUBLE_EQ(est.clique_node_fraction, 1.0);
  for (const std::uint32_t m : {1u, 17u, 50u, 100u, 204u}) {
    EXPECT_NEAR(est.curve.expected_committed(m),
                theory::em_union_of_cliques(n, d, m), 1e-9)
        << "m=" << m;
  }
}

// ---------------------------------------------------------------------------
// Determinism and the stopping rule.

TEST(AdaptiveCurve, DeterministicGivenSeedAndConfig) {
  Rng gen_rng(34);
  const auto g = gen::gnm_random(100, 400, gen_rng);
  AdaptiveConfig cfg;
  cfg.epsilon = 0.01;
  const auto a = estimate_conflict_curve_adaptive(g, cfg, 99);
  const auto b = estimate_conflict_curve_adaptive(g, cfg, 99);
  EXPECT_EQ(a.sweeps, b.sweeps);
  EXPECT_EQ(a.samples, b.samples);
  for (std::uint32_t m = 0; m <= 100; ++m) {
    EXPECT_DOUBLE_EQ(a.curve.k_bar(m), b.curve.k_bar(m));
  }
}

TEST(AdaptiveCurve, ParallelDependsOnlyOnWorkerCountNotPoolIdentity) {
  Rng gen_rng(35);
  const auto g = gen::gnm_random(80, 320, gen_rng);
  AdaptiveConfig cfg;
  cfg.epsilon = 0.01;
  ThreadPool p1(2);
  ThreadPool p2(2);
  const auto a = estimate_conflict_curve_adaptive_parallel(g, cfg, 12, p1);
  const auto b = estimate_conflict_curve_adaptive_parallel(g, cfg, 12, p2);
  EXPECT_EQ(a.sweeps, b.sweeps);
  for (std::uint32_t m = 0; m <= 80; ++m) {
    EXPECT_DOUBLE_EQ(a.curve.k_bar(m), b.curve.k_bar(m));
  }
}

TEST(AdaptiveCurve, ParallelDeterministicGivenSeedAndWorkerCount) {
  Rng gen_rng(36);
  const auto g = gen::gnm_random(80, 320, gen_rng);
  AdaptiveConfig cfg;
  cfg.epsilon = 0.01;
  ThreadPool pool(3);
  const auto a = estimate_conflict_curve_adaptive_parallel(g, cfg, 21, pool);
  const auto b = estimate_conflict_curve_adaptive_parallel(g, cfg, 21, pool);
  EXPECT_EQ(a.sweeps, b.sweeps);
  EXPECT_EQ(a.converged, b.converged);
  for (std::uint32_t m = 0; m <= 80; ++m) {
    EXPECT_DOUBLE_EQ(a.curve.k_bar(m), b.curve.k_bar(m));
  }
}

TEST(AdaptiveCurve, ParallelIsStatisticallyConsistentWithSerial) {
  Rng gen_rng(37);
  const auto g = gen::gnm_random(150, 750, gen_rng);
  AdaptiveConfig cfg;
  cfg.epsilon = 0.006;
  ThreadPool pool(4);
  const auto serial = estimate_conflict_curve_adaptive(g, cfg, 8);
  const auto parallel =
      estimate_conflict_curve_adaptive_parallel(g, cfg, 8, pool);
  ASSERT_TRUE(serial.converged);
  ASSERT_TRUE(parallel.converged);
  for (const std::uint32_t m : {2u, 40u, 75u, 150u}) {
    EXPECT_NEAR(serial.curve.r_bar(m), parallel.curve.r_bar(m),
                4 * (serial.curve.r_bar_ci95(m) +
                     parallel.curve.r_bar_ci95(m)) +
                    1e-3)
        << "m=" << m;
  }
}

// Regression pin for the stopping rule: a fixed (seed, epsilon) pair must
// reproduce the exact trial count and a bit-identical curve on two
// reference graphs. If batching, lane assignment, antithetic pairing, or
// the CV arithmetic changes the draw/stopping stream, this fails loudly —
// re-record the constants only for an intentional format break.
TEST(AdaptiveCurve, StoppingRulePinnedOnReferenceGraphs) {
  AdaptiveConfig cfg;
  cfg.epsilon = 0.01;

  Rng gen_a(101);
  const auto gnm = gen::gnm_random(200, 1200, gen_a);
  const auto a = estimate_conflict_curve_adaptive(gnm, cfg, 7);
  ASSERT_TRUE(a.converged);
  EXPECT_EQ(a.sweeps, 704u);
  EXPECT_EQ(a.samples, 352u);
  EXPECT_EQ(a.curve.k_bar(50), 0x1.b26e8ba2e8ba5p+4);    // 27.1520...
  EXPECT_EQ(a.curve.k_bar(200), 0x1.3d58ba2e8ba3p+7);    // 158.673...

  Rng gen_b(102);
  const auto skew = gen::rmat(256, 1024, 0.55, 0.15, 0.15, gen_b);
  const auto b = estimate_conflict_curve_adaptive(skew, cfg, 7);
  ASSERT_TRUE(b.converged);
  EXPECT_EQ(b.sweeps, 352u);
  EXPECT_EQ(b.samples, 176u);
  EXPECT_EQ(b.curve.k_bar(64), 0x1.51e8ba2e8ba3p+4);     // 21.1193...
  EXPECT_EQ(b.curve.k_bar(256), 0x1.1292e8ba2e8bbp+7);   // 137.287...
}

TEST(AdaptiveCurve, TighterEpsilonSpendsMoreSweeps) {
  Rng gen_rng(38);
  const auto g = gen::gnm_random(120, 600, gen_rng);
  AdaptiveConfig loose = plain_config();
  loose.epsilon = 0.02;
  AdaptiveConfig tight = plain_config();
  tight.epsilon = 0.005;
  const auto a = estimate_conflict_curve_adaptive(g, loose, 4);
  const auto b = estimate_conflict_curve_adaptive(g, tight, 4);
  ASSERT_TRUE(a.converged);
  ASSERT_TRUE(b.converged);
  EXPECT_LT(a.sweeps, b.sweeps);
  EXPECT_LE(a.worst_ci, loose.epsilon);
  EXPECT_LE(b.worst_ci, tight.epsilon);
}

TEST(AdaptiveCurve, RespectsSweepBudget) {
  Rng gen_rng(39);
  const auto g = gen::gnm_random(120, 600, gen_rng);
  AdaptiveConfig cfg;
  cfg.epsilon = 1e-9;  // unreachable
  cfg.max_sweeps = 64;
  const auto est = estimate_conflict_curve_adaptive(g, cfg, 4);
  EXPECT_FALSE(est.converged);
  EXPECT_LE(est.sweeps, cfg.max_sweeps);
  EXPECT_GT(est.samples, 0u);
}

TEST(AdaptiveCurve, ValidatesConfig) {
  const auto g = gen::path(6);
  AdaptiveConfig bad;
  bad.epsilon = 0.0;
  EXPECT_THROW((void)estimate_conflict_curve_adaptive(g, bad, 1),
               std::invalid_argument);
  bad = AdaptiveConfig{};
  bad.min_samples = 1;
  EXPECT_THROW((void)estimate_conflict_curve_adaptive(g, bad, 1),
               std::invalid_argument);
  bad = AdaptiveConfig{};
  bad.batch_samples = 0;
  EXPECT_THROW((void)estimate_conflict_curve_adaptive(g, bad, 1),
               std::invalid_argument);
  bad = AdaptiveConfig{};
  bad.max_sweeps = 2;  // < 2 antithetic samples
  EXPECT_THROW((void)estimate_conflict_curve_adaptive(g, bad, 1),
               std::invalid_argument);
}

TEST(AdaptiveCurve, InternalRelabelingKeepsCvExactness) {
  const auto g = gen::union_of_cliques(102, 16);
  AdaptiveConfig cfg;
  cfg.relabel = RelabelOrder::kBfs;
  const auto est = estimate_conflict_curve_adaptive(g, cfg, 6);
  EXPECT_TRUE(est.converged);
  EXPECT_TRUE(est.map.validate());
  EXPECT_EQ(est.worst_ci, 0.0);
  for (const std::uint32_t m : {1u, 17u, 60u, 102u}) {
    EXPECT_NEAR(est.curve.expected_committed(m),
                theory::em_union_of_cliques(102, 16, m), 1e-9)
        << "m=" << m;
  }
}

// ---------------------------------------------------------------------------
// Point estimation and the sim layer's operating-point search.

TEST(AdaptivePoint, ConvergesAndIsInternallyConsistent) {
  Rng gen_rng(40);
  const auto g = gen::gnm_random(200, 1600, gen_rng);
  AdaptiveConfig cfg;
  cfg.epsilon = 0.01;
  const std::uint32_t m = 50;
  const auto est = estimate_round_point_adaptive(g, m, cfg, 14);
  ASSERT_TRUE(est.converged);
  EXPECT_LE(est.r.ci95(), cfg.epsilon);
  EXPECT_GE(est.r.mean(), 0.0);
  EXPECT_LE(est.r.mean(), 1.0);
  // committed and r are two views of the same adjusted abort sample.
  EXPECT_NEAR(est.committed.mean(), m * (1.0 - est.r.mean()), 1e-9);
  EXPECT_EQ(est.rounds, est.samples * 2);  // antithetic pairs
}

TEST(AdaptivePoint, ExactOnKdn) {
  const std::uint32_t n = 126, d = 8, m = 40;
  const auto g = gen::union_of_cliques(n, d);
  AdaptiveConfig cfg;
  cfg.epsilon = 1e-6;
  const auto est = estimate_round_point_adaptive(g, m, cfg, 15);
  EXPECT_TRUE(est.converged);
  EXPECT_EQ(est.samples, cfg.min_samples);
  EXPECT_NEAR(est.committed.mean(), theory::em_union_of_cliques(n, d, m),
              1e-9);
}

TEST(AdaptivePoint, ValidatesM) {
  const auto g = gen::path(5);
  AdaptiveConfig cfg;
  EXPECT_THROW((void)estimate_round_point_adaptive(g, 0, cfg, 1),
               std::invalid_argument);
  EXPECT_THROW((void)estimate_round_point_adaptive(g, 6, cfg, 1),
               std::invalid_argument);
}

TEST(OperatingPoint, MatchesCurveReadoffAndAgreesWithFixedTrials) {
  Rng gen_rng(41);
  const auto g = gen::gnm_random(300, 2400, gen_rng);
  AdaptiveConfig cfg;
  cfg.epsilon = 0.008;
  const auto op = find_operating_point(g, 0.25, cfg, 16);
  ASSERT_TRUE(op.converged);
  EXPECT_LE(op.r_at_mu, 0.25);
  EXPECT_LE(op.ci_at_mu, cfg.epsilon);

  const auto direct = find_mu_adaptive(g, 0.25, cfg, 16);
  EXPECT_EQ(op.mu, direct.mu);
  EXPECT_EQ(op.sweeps, direct.curve.sweeps);

  // The historical fixed-trial search must land in the same neighborhood.
  Rng mu_rng(17);
  const auto fixed = find_mu(g, 0.25, 2000, mu_rng);
  EXPECT_NEAR(static_cast<double>(op.mu), static_cast<double>(fixed),
              0.15 * static_cast<double>(fixed) + 3.0);
}

TEST(OperatingPoint, ParallelVariantIsDeterministic) {
  Rng gen_rng(42);
  const auto g = gen::gnm_random(150, 900, gen_rng);
  AdaptiveConfig cfg;
  cfg.epsilon = 0.01;
  ThreadPool pool(2);
  const auto a = find_operating_point_parallel(g, 0.2, cfg, 18, pool);
  const auto b = find_operating_point_parallel(g, 0.2, cfg, 18, pool);
  EXPECT_EQ(a.mu, b.mu);
  EXPECT_EQ(a.sweeps, b.sweeps);
  EXPECT_DOUBLE_EQ(a.r_at_mu, b.r_at_mu);
}

}  // namespace
}  // namespace optipar
