// Chaos testing for the speculative runtime: randomized operators mutate a
// shared array under abstract locks with registered undo actions, across
// many seeds, policies, thread counts, and round sizes. The invariant: the
// final state must equal a sequential oracle that applies each task's
// effect exactly once — i.e. rollback leaves *no trace* of aborted
// attempts, no matter how the speculation interleaved.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "rt/spec_executor.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace optipar {
namespace {

/// A task's deterministic effect: add `delta` to cells [first, first+count).
struct Effect {
  std::uint32_t first = 0;
  std::uint32_t count = 1;
  std::int64_t delta = 1;
};

struct ChaosCase {
  std::uint64_t seed;
  std::size_t threads;
  std::uint32_t round_m;
  WorklistPolicy policy;
};

class ExecutorChaosTest : public ::testing::TestWithParam<ChaosCase> {};

TEST_P(ExecutorChaosTest, FinalStateMatchesSequentialOracle) {
  const auto param = GetParam();
  constexpr std::uint32_t kCells = 48;
  constexpr std::uint32_t kTasks = 300;

  // Deterministic per-task effects.
  Rng gen_rng(param.seed);
  std::vector<Effect> effects(kTasks);
  for (auto& e : effects) {
    e.first = static_cast<std::uint32_t>(gen_rng.below(kCells));
    e.count = 1 + static_cast<std::uint32_t>(gen_rng.below(4));
    e.delta = gen_rng.between(-5, 5);
  }

  // Sequential oracle: each task applied exactly once.
  std::vector<std::int64_t> oracle(kCells, 0);
  for (const auto& e : effects) {
    for (std::uint32_t i = 0; i < e.count; ++i) {
      oracle[(e.first + i) % kCells] += e.delta;
    }
  }

  // Speculative execution with per-cell locks and undo.
  std::vector<std::int64_t> cells(kCells, 0);
  ThreadPool pool(param.threads);
  SpeculativeExecutor ex(
      pool, kCells,
      [&](TaskId t, IterationContext& ctx) {
        const Effect& e = effects[t];
        for (std::uint32_t i = 0; i < e.count; ++i) {
          const std::uint32_t cell = (e.first + i) % kCells;
          ctx.acquire(cell);
          cells[cell] += e.delta;
          ctx.on_abort([&cells, cell, d = e.delta] { cells[cell] -= d; });
        }
      },
      param.seed * 7 + 1, param.policy);
  if (param.policy == WorklistPolicy::kPriority) {
    ex.set_priority_function([&effects](TaskId t) {
      return static_cast<std::uint64_t>(effects[t].first);
    });
  }
  std::vector<TaskId> tasks(kTasks);
  std::iota(tasks.begin(), tasks.end(), TaskId{0});
  ex.push_initial(tasks);

  int rounds = 0;
  while (!ex.done() && rounds++ < 100000) {
    (void)ex.run_round(param.round_m);
  }
  ASSERT_TRUE(ex.done());
  EXPECT_EQ(ex.totals().committed, kTasks);
  EXPECT_TRUE(ex.locks().all_free());
  EXPECT_EQ(cells, oracle) << "speculative execution left a trace";
}

std::vector<ChaosCase> chaos_cases() {
  std::vector<ChaosCase> cases;
  std::uint64_t seed = 1;
  for (const auto policy :
       {WorklistPolicy::kRandom, WorklistPolicy::kFifo,
        WorklistPolicy::kLifo, WorklistPolicy::kPriority}) {
    for (const std::size_t threads : {1u, 4u}) {
      for (const std::uint32_t m : {1u, 7u, 48u, 300u}) {
        cases.push_back({seed++, threads, m, policy});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ExecutorChaosTest,
                         ::testing::ValuesIn(chaos_cases()));

TEST(ExecutorChaos, OperatorExceptionsBeyondAbortPropagate) {
  // Non-AbortIteration exceptions must not be swallowed as aborts — they
  // escape run_round (through parallel_for's future) as real errors.
  ThreadPool pool(1);
  SpeculativeExecutor ex(
      pool, 1,
      [](TaskId, IterationContext&) -> void {
        throw std::runtime_error("app bug");
      },
      1);
  std::vector<TaskId> tasks{0};
  ex.push_initial(tasks);
  EXPECT_THROW((void)ex.run_round(1), std::runtime_error);
}

}  // namespace
}  // namespace optipar
