// Chaos testing for the speculative runtime: randomized operators mutate a
// shared array under abstract locks with registered undo actions, across
// many seeds, policies, thread counts, and round sizes. The invariant: the
// final state must equal a sequential oracle that applies each task's
// effect exactly once — i.e. rollback leaves *no trace* of aborted
// attempts, no matter how the speculation interleaved.
#include <gtest/gtest.h>

#include <sys/stat.h>

#include <atomic>
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "control/baselines.hpp"
#include "rt/adaptive_executor.hpp"
#include "rt/checkpoint.hpp"
#include "rt/spec_executor.hpp"
#include "support/failure_policy.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace optipar {
namespace {

/// A task's deterministic effect: add `delta` to cells [first, first+count).
struct Effect {
  std::uint32_t first = 0;
  std::uint32_t count = 1;
  std::int64_t delta = 1;
};

struct ChaosCase {
  std::uint64_t seed;
  std::size_t threads;
  std::uint32_t round_m;
  WorklistPolicy policy;
};

class ExecutorChaosTest : public ::testing::TestWithParam<ChaosCase> {};

TEST_P(ExecutorChaosTest, FinalStateMatchesSequentialOracle) {
  const auto param = GetParam();
  constexpr std::uint32_t kCells = 48;
  constexpr std::uint32_t kTasks = 300;

  // Deterministic per-task effects.
  Rng gen_rng(param.seed);
  std::vector<Effect> effects(kTasks);
  for (auto& e : effects) {
    e.first = static_cast<std::uint32_t>(gen_rng.below(kCells));
    e.count = 1 + static_cast<std::uint32_t>(gen_rng.below(4));
    e.delta = gen_rng.between(-5, 5);
  }

  // Sequential oracle: each task applied exactly once.
  std::vector<std::int64_t> oracle(kCells, 0);
  for (const auto& e : effects) {
    for (std::uint32_t i = 0; i < e.count; ++i) {
      oracle[(e.first + i) % kCells] += e.delta;
    }
  }

  // Speculative execution with per-cell locks and undo.
  std::vector<std::int64_t> cells(kCells, 0);
  ThreadPool pool(param.threads);
  SpeculativeExecutor ex(
      pool, kCells,
      [&](TaskId t, IterationContext& ctx) {
        const Effect& e = effects[t];
        for (std::uint32_t i = 0; i < e.count; ++i) {
          const std::uint32_t cell = (e.first + i) % kCells;
          ctx.acquire(cell);
          cells[cell] += e.delta;
          ctx.on_abort([&cells, cell, d = e.delta] { cells[cell] -= d; });
        }
      },
      param.seed * 7 + 1, param.policy);
  // The sweep's multi-thread cases should exercise real multi-lane
  // rounds even when the host has fewer cores than the pool.
  ex.set_pipeline({.max_lanes = param.threads});
  if (param.policy == WorklistPolicy::kPriority) {
    ex.set_priority_function([&effects](TaskId t) {
      return static_cast<std::uint64_t>(effects[t].first);
    });
  }
  std::vector<TaskId> tasks(kTasks);
  std::iota(tasks.begin(), tasks.end(), TaskId{0});
  ex.push_initial(tasks);

  int rounds = 0;
  while (!ex.done() && rounds++ < 100000) {
    (void)ex.run_round(param.round_m);
  }
  ASSERT_TRUE(ex.done());
  EXPECT_EQ(ex.totals().committed, kTasks);
  EXPECT_TRUE(ex.locks().all_free());
  EXPECT_EQ(cells, oracle) << "speculative execution left a trace";
}

std::vector<ChaosCase> chaos_cases() {
  std::vector<ChaosCase> cases;
  std::uint64_t seed = 1;
  for (const auto policy :
       {WorklistPolicy::kRandom, WorklistPolicy::kFifo,
        WorklistPolicy::kLifo, WorklistPolicy::kPriority}) {
    for (const std::size_t threads : {1u, 4u}) {
      for (const std::uint32_t m : {1u, 7u, 48u, 300u}) {
        cases.push_back({seed++, threads, m, policy});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ExecutorChaosTest,
                         ::testing::ValuesIn(chaos_cases()));

TEST(ExecutorChaos, OperatorExceptionsBeyondAbortPropagate) {
  // Non-AbortIteration exceptions must not be swallowed as aborts — they
  // escape run_round (through parallel_for's future) as real errors.
  ThreadPool pool(1);
  SpeculativeExecutor ex(
      pool, 1,
      [](TaskId, IterationContext&) -> void {
        throw std::runtime_error("app bug");
      },
      1);
  std::vector<TaskId> tasks{0};
  ex.push_initial(tasks);
  EXPECT_THROW((void)ex.run_round(1), std::runtime_error);
}

TEST(ExecutorChaos, QuarantinedTasksAreNotReExecutedAfterRecovery) {
  // Dead-letter replay across checkpoint/restore (DESIGN.md §11): a task
  // poisoned and quarantined before the crash must stay quarantined in the
  // resumed run — never drawn, never re-executed — and the dead-letter
  // ledger itself must survive byte-for-byte.
  const std::string dir = "/tmp/optipar_ckpt_deadletter";
  ::mkdir(dir.c_str(), 0755);
  for (const char* f : {"/snap-a.bin", "/snap-b.bin", "/journal.bin"}) {
    std::remove((dir + f).c_str());
  }

  constexpr std::uint32_t kCells = 8;
  constexpr std::uint32_t kTasks = 60;
  constexpr std::uint64_t kSeed = 5;
  constexpr std::uint64_t kFingerprint = 0xfeedfacecafef00dULL;
  std::atomic<int> poison_runs{0};
  const auto make_operator = [&poison_runs](std::uint32_t cells) {
    return [&poison_runs, cells](TaskId t, IterationContext& ctx) {
      if (t < 4) {  // tasks 0-3 are poisoned: they fault on every attempt
        ++poison_runs;
        throw std::runtime_error("poisoned task");
      }
      ctx.acquire(static_cast<std::uint32_t>(t % cells));
      // Early healthy tasks spawn a second wave so the worklist stays
      // non-empty past the quarantine round: retried tasks re-enter at the
      // BACK of the FIFO, so with 56 healthy initial tasks the poison
      // retries (and their quarantine) land at round 15, and the second
      // wave keeps the run alive until ~round 23.
      if (t >= 4 && t < 34) ctx.push(t + 1000);
    };
  };
  FailurePolicy policy;
  policy.max_retries = 1;
  policy.backoff_base_rounds = 1;
  policy.backoff_cap_rounds = 1;

  CheckpointConfig ccfg;
  ccfg.dir = dir;
  ccfg.every = 1;  // snapshot every round: the kill point IS a snapshot

  std::vector<SpeculativeExecutor::DeadLetter> letters_before;
  int runs_before = 0;
  {
    // One lane: the multi-lane draw phase is timing-dependent (racing
    // chunk tickets), and this test compares ledgers entry-for-entry.
    ThreadPool pool(1);
    SpeculativeExecutor ex(pool, kCells, make_operator(kCells), kSeed,
                           WorklistPolicy::kFifo);
    ex.set_failure_policy(policy);
    std::vector<TaskId> tasks(kTasks);
    std::iota(tasks.begin(), tasks.end(), TaskId{0});
    ex.push_initial(tasks);
    FixedController controller(4);
    CheckpointManager cp(ccfg, kFingerprint);
    AdaptiveRunConfig partial;
    partial.max_rounds = 17;  // past the quarantine round (15), before done
    partial.checkpoint = &cp;
    (void)run_adaptive(ex, controller, partial);
    ASSERT_EQ(ex.dead_letters().size(), 4u);
    ASSERT_FALSE(ex.done());  // the "crash" landed mid-run
    letters_before = ex.dead_letters();
    runs_before = poison_runs.load();
    // max_retries = 1 -> each poison task ran exactly twice.
    ASSERT_EQ(runs_before, 8);
  }

  // Resume in a fresh executor: the ledger comes back from the snapshot...
  ThreadPool pool(1);
  SpeculativeExecutor ex(pool, kCells, make_operator(kCells), kSeed,
                         WorklistPolicy::kFifo);
  ex.set_failure_policy(policy);
  std::vector<TaskId> tasks(kTasks);
  std::iota(tasks.begin(), tasks.end(), TaskId{0});
  ex.push_initial(tasks);
  FixedController controller(4);
  CheckpointManager cp(ccfg, kFingerprint);
  AdaptiveRunConfig resume;
  resume.checkpoint = &cp;
  (void)run_adaptive(ex, controller, resume);

  // ...the run drains, and the poison operators never fired again.
  EXPECT_TRUE(ex.done());
  EXPECT_EQ(poison_runs.load(), runs_before);
  ASSERT_EQ(ex.dead_letters().size(), letters_before.size());
  for (std::size_t i = 0; i < letters_before.size(); ++i) {
    EXPECT_EQ(ex.dead_letters()[i].task, letters_before[i].task);
    EXPECT_EQ(ex.dead_letters()[i].attempts, letters_before[i].attempts);
    EXPECT_EQ(ex.dead_letters()[i].error, letters_before[i].error);
  }
  // 56 healthy initial tasks + 30 second-wave pushes commit; 4 poison
  // tasks die. kTasks only counts the initial wave.
  EXPECT_EQ(ex.totals().committed + ex.dead_letters().size(), kTasks + 30u);
}

}  // namespace
}  // namespace optipar
