#include "sim/run_loop.hpp"

#include <gtest/gtest.h>

#include "control/baselines.hpp"
#include "control/hybrid.hpp"
#include "graph/generators.hpp"
#include "model/conflict_ratio.hpp"

namespace optipar {
namespace {

TEST(TraceMetrics, TotalsAndWaste) {
  Trace t;
  StepRecord a;
  a.launched = 10;
  a.committed = 7;
  a.aborted = 3;
  StepRecord b;
  b.launched = 20;
  b.committed = 15;
  b.aborted = 5;
  t.steps = {a, b};
  EXPECT_EQ(t.total_committed(), 22u);
  EXPECT_EQ(t.total_aborted(), 8u);
  EXPECT_NEAR(t.wasted_fraction(), 8.0 / 30.0, 1e-12);
  EXPECT_NEAR(t.mean_conflict_ratio(), (0.3 + 0.25) / 2, 1e-12);
  EXPECT_NEAR(t.mean_conflict_ratio(1), 0.25, 1e-12);
}

TEST(TraceMetrics, EmptyTraceIsSafe) {
  Trace t;
  EXPECT_EQ(t.total_committed(), 0u);
  EXPECT_EQ(t.wasted_fraction(), 0.0);
  EXPECT_EQ(t.mean_conflict_ratio(), 0.0);
  EXPECT_EQ(t.convergence_step(10, 0.2), 0u);
  EXPECT_EQ(t.rms_relative_error(10, 0), 0.0);
}

TEST(TraceMetrics, ConvergenceStepFindsFirstStableWindow) {
  Trace t;
  const std::uint32_t ms[] = {2, 5, 40, 95, 100, 103, 99, 101, 97, 100};
  for (std::uint32_t i = 0; i < 10; ++i) {
    StepRecord r;
    r.step = i;
    r.m = ms[i];
    t.steps.push_back(r);
  }
  // mu = 100, band 10%: values within [90, 110] start at index 3 and hold.
  EXPECT_EQ(t.convergence_step(100.0, 0.10, 5), 3u);
  // Band 1%: only indices 4, 7, 9 qualify; no 3-run -> never converges.
  EXPECT_EQ(t.convergence_step(100.0, 0.01, 3), t.steps.size());
}

TEST(TraceMetrics, RmsRelativeError) {
  Trace t;
  for (const std::uint32_t m : {90u, 110u}) {
    StepRecord r;
    r.m = m;
    t.steps.push_back(r);
  }
  EXPECT_NEAR(t.rms_relative_error(100.0, 0), 0.1, 1e-12);
}

TEST(RunControlled, StopsAtMaxSteps) {
  Rng rng(1);
  StationaryWorkload w(gen::gnm_random(50, 150, rng));
  FixedController c(8);
  RunLoopConfig cfg;
  cfg.max_steps = 25;
  const auto trace = run_controlled(c, w, cfg, rng);
  EXPECT_EQ(trace.steps.size(), 25u);
  for (const auto& s : trace.steps) EXPECT_EQ(s.m, 8u);
}

TEST(RunControlled, StopsWhenWorkloadDrains) {
  Rng rng(2);
  ConsumingWorkload w(gen::gnm_random(30, 60, rng));
  FixedController c(10);
  RunLoopConfig cfg;
  cfg.max_steps = 10000;
  const auto trace = run_controlled(c, w, cfg, rng);
  EXPECT_TRUE(w.done());
  EXPECT_EQ(trace.total_committed(), 30u);  // every task commits once
  EXPECT_EQ(trace.steps.back().pending_after, 0u);
}

TEST(RunControlled, LaunchIsCappedByPendingWork) {
  Rng rng(3);
  ConsumingWorkload w(CsrGraph::from_edges(5, {}));
  FixedController c(100);
  RunLoopConfig cfg;
  const auto trace = run_controlled(c, w, cfg, rng);
  ASSERT_EQ(trace.steps.size(), 1u);  // all 5 commit in one round
  EXPECT_EQ(trace.steps[0].launched, 5u);
  EXPECT_EQ(trace.steps[0].committed, 5u);
}

TEST(RunControlled, HybridTracksTargetOnStationaryGraph) {
  // The integration property behind Fig. 3: on a fixed random CC graph the
  // hybrid controller's steady-state conflict ratio sits near ρ.
  Rng rng(4);
  const auto g = gen::random_with_average_degree(2000, 16, rng);
  StationaryWorkload w(g);
  ControllerParams p;
  p.rho = 0.25;
  HybridController c(p);
  RunLoopConfig cfg;
  cfg.max_steps = 300;
  const auto trace = run_controlled(c, w, cfg, rng);
  // Average observed ratio over the second half of the run ≈ ρ.
  EXPECT_NEAR(trace.mean_conflict_ratio(150), 0.25, 0.06);
}

TEST(RunControlled, HybridConvergesNearMu) {
  Rng rng(5);
  const auto g = gen::random_with_average_degree(1000, 12, rng);
  const auto mu = find_mu(g, 0.25, 800, rng);
  StationaryWorkload w(g);
  ControllerParams p;
  p.rho = 0.25;
  HybridController c(p);
  RunLoopConfig cfg;
  cfg.max_steps = 400;
  const auto trace = run_controlled(c, w, cfg, rng);
  const auto conv = trace.convergence_step(mu, 0.30, 5);
  EXPECT_LT(conv, 100u) << "mu=" << mu;
}

TEST(RunControlled, HybridShrinksOnTheDrainTail) {
  // On a consuming workload the pending cap forces launched <= pending, so
  // the final rounds must launch small batches even if m_t stayed high.
  Rng rng(7);
  ConsumingWorkload w(gen::gnm_random(400, 1200, rng));
  ControllerParams p;
  p.rho = 0.25;
  HybridController c(p);
  RunLoopConfig cfg;
  cfg.max_steps = 100000;
  const auto trace = run_controlled(c, w, cfg, rng);
  ASSERT_TRUE(w.done());
  EXPECT_EQ(trace.total_committed(), 400u);
  EXPECT_LE(trace.steps.back().launched, 8u);  // the tail is tiny
}

TEST(RunControlled, BisectionRecoversAfterWorkloadDrift) {
  // Dense stage then a sparse stage: the bisection controller's converged
  // bracket becomes wrong; its drift check must restart the search and
  // re-approach the new (much larger) operating point.
  Rng rng(8);
  std::vector<PhaseShiftWorkload::Stage> stages;
  stages.push_back({120, gen::union_of_cliques(600, 59)});   // mu small
  stages.push_back({200, CsrGraph::from_edges(600, {})});    // mu = 600
  PhaseShiftWorkload w(std::move(stages));
  ControllerParams p;
  p.rho = 0.25;
  p.m_max = 1024;
  BisectionController c(p);
  RunLoopConfig cfg;
  cfg.max_steps = 320;
  const auto trace = run_controlled(c, w, cfg, rng);
  std::uint32_t m_dense_end = trace.steps[119].m;
  std::uint32_t m_sparse_end = trace.steps.back().m;
  EXPECT_GT(m_sparse_end, 4 * std::max(1u, m_dense_end));
}

TEST(RunControlled, RecordsGraphDensity) {
  Rng rng(6);
  StationaryWorkload w(gen::union_of_cliques(60, 5));
  FixedController c(4);
  RunLoopConfig cfg;
  cfg.max_steps = 3;
  const auto trace = run_controlled(c, w, cfg, rng);
  for (const auto& s : trace.steps) EXPECT_DOUBLE_EQ(s.avg_degree, 5.0);
}

}  // namespace
}  // namespace optipar
