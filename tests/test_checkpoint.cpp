// Crash-consistent checkpoint/restore (DESIGN.md §11): the snapshot format's
// integrity guarantees, the journal's torn-tail recovery, executor/controller
// state round-trips, and the recovery ladder — newest valid snapshot, older
// generation, clean start — with the byte-identity contract enforced against
// an uninterrupted reference run. In-process crash *injection* (the _Exit
// paths) is exercised end-to-end by scripts/run_crash.sh through the CLI,
// since _Exit would take the test runner down with it.
#include "rt/checkpoint.hpp"

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "control/baselines.hpp"
#include "control/extra.hpp"
#include "control/hybrid.hpp"
#include "graph/generators.hpp"
#include "rt/adaptive_executor.hpp"
#include "rt/spec_executor.hpp"
#include "support/snapshot/journal.hpp"
#include "support/snapshot/snapshot.hpp"

namespace optipar {
namespace {

using snapshot::Reader;
using snapshot::RoundJournal;
using snapshot::SnapshotError;
using snapshot::Writer;

// ---------------------------------------------------------------------------
// Fixtures and helpers
// ---------------------------------------------------------------------------

/// Fresh, empty scratch directory per test.
std::string scratch_dir(const std::string& name) {
  const std::string dir = "/tmp/optipar_ckpt_" + name;
  ::mkdir(dir.c_str(), 0755);
  for (const char* f : {"/snap-a.bin", "/snap-b.bin", "/journal.bin",
                        "/snap-a.bin.tmp", "/snap-b.bin.tmp"}) {
    std::remove((dir + f).c_str());
  }
  return dir;
}

std::vector<char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void spew(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void flip_byte(const std::string& path, std::size_t offset) {
  auto bytes = slurp(path);
  ASSERT_LT(offset, bytes.size());
  bytes[offset] = static_cast<char>(bytes[offset] ^ 0x5a);
  spew(path, bytes);
}

/// The `run` subcommand's workload at test scale: one task per node, each
/// acquiring its closed neighborhood. Single-lane pool: the multi-lane draw
/// phase hands ticket chunks to lanes through a racing fetch_add, so only
/// the one-lane configuration replays byte-identically — which is exactly
/// the configuration the byte-identity contract is defined over (the same
/// scope as run_chaos.sh's deterministic-replay check; DESIGN.md §11).
struct RunRig {
  explicit RunRig(const CsrGraph& graph, std::uint64_t seed)
      : pool(1),
        ex(
            pool, graph.num_nodes(),
            [&graph](TaskId t, IterationContext& ctx) {
              const auto v = static_cast<NodeId>(t);
              ctx.acquire(v);
              for (const NodeId u : graph.neighbors(v)) ctx.acquire(u);
            },
            seed) {
    std::vector<TaskId> tasks(graph.num_nodes());
    std::iota(tasks.begin(), tasks.end(), TaskId{0});
    ex.push_initial(tasks);
  }

  ThreadPool pool;
  SpeculativeExecutor ex;
};

void expect_traces_equal(const Trace& got, const Trace& want) {
  ASSERT_EQ(got.steps.size(), want.steps.size());
  for (std::size_t i = 0; i < want.steps.size(); ++i) {
    const StepRecord& a = got.steps[i];
    const StepRecord& b = want.steps[i];
    EXPECT_EQ(a.step, b.step) << "round " << i;
    EXPECT_EQ(a.m, b.m) << "round " << i;
    EXPECT_EQ(a.launched, b.launched) << "round " << i;
    EXPECT_EQ(a.committed, b.committed) << "round " << i;
    EXPECT_EQ(a.aborted, b.aborted) << "round " << i;
    EXPECT_EQ(a.retried, b.retried) << "round " << i;
    EXPECT_EQ(a.quarantined, b.quarantined) << "round " << i;
    EXPECT_EQ(a.injected, b.injected) << "round " << i;
    EXPECT_EQ(a.pending_after, b.pending_after) << "round " << i;
    EXPECT_EQ(a.degraded, b.degraded) << "round " << i;
    EXPECT_EQ(a.error, b.error) << "round " << i;
  }
  EXPECT_EQ(got.degraded_at_step, want.degraded_at_step);
}

// ---------------------------------------------------------------------------
// Format layer
// ---------------------------------------------------------------------------

TEST(SnapshotFormat, Crc32KnownAnswer) {
  // The standard check value for CRC-32/ISO-HDLC.
  EXPECT_EQ(snapshot::crc32_bytes("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(snapshot::crc32_bytes("", 0), 0u);
}

TEST(SnapshotFormat, WriterReaderRoundTrip) {
  Writer w;
  w.u8(0xab);
  w.u32(0xdeadbeefu);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  w.f64(-3.25);
  w.str("hello \0 world");  // embedded NUL truncates at the literal — fine
  w.str("");
  const std::vector<std::uint64_t> xs = {1, 2, 3, 1ull << 40};
  w.u64_vec(xs);

  Reader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xabu);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.f64(), -3.25);
  EXPECT_EQ(r.str(), "hello ");
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.u64_vec(), xs);
  EXPECT_NO_THROW(r.expect_end());
}

TEST(SnapshotFormat, HostilePayloadsAreRejectedBeforeAllocation) {
  // A length prefix claiming more bytes than remain must throw kMalformed
  // without attempting the allocation.
  Writer w;
  w.u64(1ull << 40);  // "here come 2^40 u64s"
  Reader r(w.bytes());
  try {
    (void)r.u64_vec();
    FAIL() << "expected SnapshotError";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.kind(), SnapshotError::Kind::kMalformed);
  }

  // Reading past the end of a truncated buffer throws, never reads.
  Writer w2;
  w2.u32(7);
  Reader r2(w2.bytes());
  EXPECT_THROW((void)r2.u64(), SnapshotError);

  // Leftover bytes are a format violation, not silently ignored.
  Writer w3;
  w3.u32(7);
  w3.u32(8);
  Reader r3(w3.bytes());
  (void)r3.u32();
  EXPECT_THROW(r3.expect_end(), SnapshotError);
}

TEST(SnapshotFormat, FileCorruptionIsDetectedByKind) {
  const std::string dir = scratch_dir("filecorrupt");
  const std::string path = dir + "/snap-a.bin";
  Writer w;
  w.str("payload under test");
  w.u64(123456789);
  const auto payload = w.take();

  snapshot::write_file_atomic(path, payload);
  EXPECT_EQ(snapshot::read_file_validated(path), payload);

  // Bit rot in the payload -> kBadChecksum.
  flip_byte(path, snapshot::kFileHeaderBytes + 3);
  try {
    (void)snapshot::read_file_validated(path);
    FAIL() << "expected kBadChecksum";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.kind(), SnapshotError::Kind::kBadChecksum);
  }

  // Wrong magic -> not a snapshot at all.
  snapshot::write_file_atomic(path, payload);
  flip_byte(path, 0);
  try {
    (void)snapshot::read_file_validated(path);
    FAIL() << "expected kBadMagic";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.kind(), SnapshotError::Kind::kBadMagic);
  }

  // Future format version -> kBadVersion.
  snapshot::write_file_atomic(path, payload);
  flip_byte(path, 4);
  try {
    (void)snapshot::read_file_validated(path);
    FAIL() << "expected kBadVersion";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.kind(), SnapshotError::Kind::kBadVersion);
  }

  // Torn write: payload shorter than the header's length -> kTruncated.
  snapshot::write_file_atomic(path, payload);
  auto bytes = slurp(path);
  bytes.resize(bytes.size() - 5);
  spew(path, bytes);
  try {
    (void)snapshot::read_file_validated(path);
    FAIL() << "expected kTruncated";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.kind(), SnapshotError::Kind::kTruncated);
  }

  // Absent file -> kIo (the ladder's "candidate not present").
  try {
    (void)snapshot::read_file_validated(dir + "/no-such.bin");
    FAIL() << "expected kIo";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.kind(), SnapshotError::Kind::kIo);
  }
}

TEST(SnapshotFormat, MidWriteStopLeavesTargetUntouched) {
  const std::string dir = scratch_dir("midwrite");
  const std::string path = dir + "/snap-a.bin";
  Writer w;
  w.str("generation one");
  snapshot::write_file_atomic(path, w.bytes());
  const auto original = slurp(path);

  Writer w2;
  w2.str("generation two, torn mid-write");
  snapshot::write_file_atomic_until(path, w2.bytes(),
                                    snapshot::AtomicWriteStop::kMidWrite);
  // The visible file still holds generation one; only the tmp is torn.
  EXPECT_EQ(slurp(path), original);
  snapshot::write_file_atomic_until(
      path, w2.bytes(), snapshot::AtomicWriteStop::kBeforeRename);
  EXPECT_EQ(slurp(path), original);
}

// ---------------------------------------------------------------------------
// Journal layer
// ---------------------------------------------------------------------------

TEST(Journal, TornTailIsTruncatedOnOpen) {
  const std::string dir = scratch_dir("torntail");
  const std::string path = dir + "/journal.bin";
  Writer r0;
  r0.str("record zero");
  Writer r1;
  r1.str("record one");
  Writer r2;
  r2.str("record two — torn");
  {
    RoundJournal j(path);
    EXPECT_EQ(j.committed_count(), 0u);
    j.append(r0.bytes());
    j.append(r1.bytes());
    j.append_torn(r2.bytes(), 7);  // half a header, then "crash"
    EXPECT_EQ(j.committed_count(), 2u);
  }
  {
    RoundJournal j(path);
    EXPECT_TRUE(j.truncated_torn_tail());
    ASSERT_EQ(j.records().size(), 2u);
    EXPECT_EQ(Reader(j.records()[0]).str(), "record zero");
    EXPECT_EQ(Reader(j.records()[1]).str(), "record one");
    // Appends continue cleanly past the truncation point.
    j.append(r2.bytes());
    EXPECT_EQ(j.committed_count(), 3u);
  }
  {
    RoundJournal j(path);
    EXPECT_FALSE(j.truncated_torn_tail());
    ASSERT_EQ(j.records().size(), 3u);
    EXPECT_EQ(Reader(j.records()[2]).str(), "record two — torn");
  }
}

TEST(Journal, RewindDropsNewerRecords) {
  const std::string dir = scratch_dir("rewind");
  const std::string path = dir + "/journal.bin";
  {
    RoundJournal j(path);
    for (std::uint32_t i = 0; i < 5; ++i) {
      Writer w;
      w.u32(i);
      j.append(w.bytes());
    }
    j.rewind_to(2);
    EXPECT_EQ(j.committed_count(), 2u);
  }
  RoundJournal j(path);
  ASSERT_EQ(j.records().size(), 2u);
  EXPECT_EQ(Reader(j.records()[1]).u32(), 1u);
}

TEST(Journal, StepRecordRoundTrips) {
  StepRecord rec;
  rec.step = 17;
  rec.m = 9;
  rec.launched = 9;
  rec.committed = 6;
  rec.aborted = 3;
  rec.pending_after = 40;
  rec.retried = 2;
  rec.quarantined = 1;
  rec.injected = 4;
  rec.degraded = true;
  rec.error = "std::runtime_error: injected";
  const StepRecord back = decode_step(encode_step(rec));
  EXPECT_EQ(back.step, rec.step);
  EXPECT_EQ(back.m, rec.m);
  EXPECT_EQ(back.launched, rec.launched);
  EXPECT_EQ(back.committed, rec.committed);
  EXPECT_EQ(back.aborted, rec.aborted);
  EXPECT_EQ(back.pending_after, rec.pending_after);
  EXPECT_EQ(back.retried, rec.retried);
  EXPECT_EQ(back.quarantined, rec.quarantined);
  EXPECT_EQ(back.injected, rec.injected);
  EXPECT_EQ(back.degraded, rec.degraded);
  EXPECT_EQ(back.error, rec.error);
}

// ---------------------------------------------------------------------------
// State round-trips
// ---------------------------------------------------------------------------

TEST(StateRoundTrip, ExecutorResumesTheExactDrawStream) {
  // Save the executor mid-run, load into a freshly constructed twin, then
  // drive both with the same allocation sequence: every round must match.
  const CsrGraph g = gen::union_of_cliques(49, 6);
  RunRig a(g, 99);
  for (int i = 0; i < 4; ++i) (void)a.ex.run_round(5);

  Writer w;
  a.ex.save_state(w);
  const auto payload = w.take();

  RunRig b(g, 99);
  Reader r(payload);
  b.ex.load_state(r);
  EXPECT_NO_THROW(r.expect_end());

  while (!a.ex.done()) {
    const RoundStats sa = a.ex.run_round(7);
    const RoundStats sb = b.ex.run_round(7);
    EXPECT_EQ(sa.launched, sb.launched);
    EXPECT_EQ(sa.committed, sb.committed);
    EXPECT_EQ(sa.aborted, sb.aborted);
    EXPECT_EQ(a.ex.pending(), b.ex.pending());
  }
  EXPECT_TRUE(b.ex.done());
  EXPECT_EQ(a.ex.totals().committed, b.ex.totals().committed);
  EXPECT_EQ(a.ex.totals().launched, b.ex.totals().launched);
  EXPECT_EQ(a.ex.round_index(), b.ex.round_index());
}

TEST(StateRoundTrip, ExecutorShapeMismatchIsRejected) {
  const CsrGraph g = gen::union_of_cliques(49, 6);
  RunRig a(g, 99);
  (void)a.ex.run_round(4);
  Writer w;
  a.ex.save_state(w);
  const auto payload = w.take();

  RunRig other_seed(g, 100);
  Reader r(payload);
  try {
    other_seed.ex.load_state(r);
    FAIL() << "expected kMismatch";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.kind(), SnapshotError::Kind::kMismatch);
  }
}

TEST(StateRoundTrip, ControllersResumeTheirDecisionSequence) {
  // Feed a prefix of observations, save, restore into a fresh instance,
  // then feed an identical suffix to both: decisions must coincide.
  ControllerParams params;
  const auto stats_at = [](std::uint32_t i) {
    RoundStats s;
    s.launched = 16;
    s.aborted = (i * 5) % 17;
    if (s.aborted > s.launched) s.aborted = s.launched;
    s.committed = s.launched - s.aborted;
    return s;
  };
  const auto check = [&](Controller& live, Controller& restored) {
    for (std::uint32_t i = 0; i < 9; ++i) (void)live.observe(stats_at(i));
    Writer w;
    live.save_state(w);
    Reader r(w.bytes());
    restored.load_state(r);
    EXPECT_NO_THROW(r.expect_end());
    for (std::uint32_t i = 9; i < 25; ++i) {
      EXPECT_EQ(live.observe(stats_at(i)), restored.observe(stats_at(i)))
          << live.name() << " diverged at observation " << i;
    }
  };

  HybridController h1(params), h2(params);
  check(h1, h2);
  BisectionController b1(params), b2(params);
  check(b1, b2);
  AimdController a1(params), a2(params);
  check(a1, a2);
  PidController p1(params), p2(params);
  check(p1, p2);
  EwmaHybridController e1(params), e2(params);
  check(e1, e2);
}

// ---------------------------------------------------------------------------
// The recovery ladder, end to end
// ---------------------------------------------------------------------------

Trace reference_run(const CsrGraph& g, std::uint64_t seed,
                    const AdaptiveRunConfig& cfg) {
  RunRig rig(g, seed);
  ControllerParams params;
  HybridController controller(params);
  return run_adaptive(rig.ex, controller, cfg);
}

TEST(RecoveryLadder, ResumedRunIsByteIdenticalToUninterrupted) {
  const CsrGraph g = gen::union_of_cliques(60, 5);
  constexpr std::uint64_t kSeed = 31;
  AdaptiveRunConfig cfg;
  const Trace reference = reference_run(g, kSeed, cfg);
  ASSERT_GT(reference.steps.size(), 6u);  // needs room to interrupt

  const std::string dir = scratch_dir("byteident");
  CheckpointConfig ccfg;
  ccfg.dir = dir;
  ccfg.every = 2;

  // "Crash" after a handful of rounds: max_rounds plays the role of the
  // kill, leaving a snapshot plus journal records beyond it on disk.
  {
    RunRig rig(g, kSeed);
    ControllerParams params;
    HybridController controller(params);
    CheckpointManager cp(ccfg, graph_fingerprint(g));
    AdaptiveRunConfig partial = cfg;
    partial.max_rounds = 5;
    partial.checkpoint = &cp;
    const Trace before = run_adaptive(rig.ex, controller, partial);
    ASSERT_EQ(before.steps.size(), 5u);
    ASSERT_GE(cp.snapshots_written(), 1u);
    expect_traces_equal(
        before, Trace{{reference.steps.begin(), reference.steps.begin() + 5},
                      reference.degraded_at_step >= 5
                          ? static_cast<std::size_t>(-1)
                          : reference.degraded_at_step});
  }

  // Resume with a FRESH rig and controller: everything must come from disk.
  RunRig rig(g, kSeed);
  ControllerParams params;
  HybridController controller(params);
  CheckpointManager cp(ccfg, graph_fingerprint(g));
  AdaptiveRunConfig resume = cfg;
  resume.checkpoint = &cp;
  const Trace resumed = run_adaptive(rig.ex, controller, resume);

  expect_traces_equal(resumed, reference);
  EXPECT_TRUE(rig.ex.done());
  EXPECT_TRUE(cp.rejected_candidates().empty());
}

TEST(RecoveryLadder, CorruptNewestFallsBackToOlderGeneration) {
  const CsrGraph g = gen::union_of_cliques(60, 5);
  constexpr std::uint64_t kSeed = 31;
  AdaptiveRunConfig cfg;
  const Trace reference = reference_run(g, kSeed, cfg);

  const std::string dir = scratch_dir("fallback");
  CheckpointConfig ccfg;
  ccfg.dir = dir;
  ccfg.every = 2;  // snapshots after rounds 1 and 3 -> both generations
  {
    RunRig rig(g, kSeed);
    ControllerParams params;
    HybridController controller(params);
    CheckpointManager cp(ccfg, graph_fingerprint(g));
    AdaptiveRunConfig partial = cfg;
    partial.max_rounds = 4;
    partial.checkpoint = &cp;
    (void)run_adaptive(rig.ex, controller, partial);
    ASSERT_EQ(cp.snapshots_written(), 2u);
  }
  // Generation a holds rounds 0-1, generation b rounds 0-3. Corrupt the
  // newer one: the ladder must detect it and load the older.
  flip_byte(dir + "/snap-b.bin", snapshot::kFileHeaderBytes + 2);

  RunRig rig(g, kSeed);
  ControllerParams params;
  HybridController controller(params);
  CheckpointManager cp(ccfg, graph_fingerprint(g));
  AdaptiveRunConfig resume = cfg;
  resume.checkpoint = &cp;
  const Trace resumed = run_adaptive(rig.ex, controller, resume);

  expect_traces_equal(resumed, reference);
  ASSERT_EQ(cp.rejected_candidates().size(), 1u);
  EXPECT_NE(cp.rejected_candidates()[0].find("snap-b.bin"),
            std::string::npos);
}

TEST(RecoveryLadder, BothGenerationsCorruptMeansCleanStart) {
  const CsrGraph g = gen::union_of_cliques(60, 5);
  constexpr std::uint64_t kSeed = 31;
  AdaptiveRunConfig cfg;
  const Trace reference = reference_run(g, kSeed, cfg);

  const std::string dir = scratch_dir("cleanstart");
  CheckpointConfig ccfg;
  ccfg.dir = dir;
  ccfg.every = 2;
  {
    RunRig rig(g, kSeed);
    ControllerParams params;
    HybridController controller(params);
    CheckpointManager cp(ccfg, graph_fingerprint(g));
    AdaptiveRunConfig partial = cfg;
    partial.max_rounds = 4;
    partial.checkpoint = &cp;
    (void)run_adaptive(rig.ex, controller, partial);
  }
  flip_byte(dir + "/snap-a.bin", snapshot::kFileHeaderBytes + 1);
  flip_byte(dir + "/snap-b.bin", snapshot::kFileHeaderBytes + 1);

  // Clean start must really be clean: the stale journal is rewound, and the
  // rerun reproduces the reference trace from round 0.
  RunRig rig(g, kSeed);
  ControllerParams params;
  HybridController controller(params);
  CheckpointManager cp(ccfg, graph_fingerprint(g));
  AdaptiveRunConfig resume = cfg;
  resume.checkpoint = &cp;
  const Trace resumed = run_adaptive(rig.ex, controller, resume);

  expect_traces_equal(resumed, reference);
  EXPECT_EQ(cp.rejected_candidates().size(), 2u);
}

TEST(RecoveryLadder, CorruptSnapshotsPlusTornJournalStillStartClean) {
  // The combined worst case a crashing daemon can leave behind: BOTH
  // snapshot generations rotted AND a torn record at the journal tail.
  // Recovery must refuse every damaged artifact and fall all the way to a
  // clean start — never loading corrupt state — and the rerun must still
  // reproduce the reference trace from round 0.
  const CsrGraph g = gen::union_of_cliques(60, 5);
  constexpr std::uint64_t kSeed = 31;
  AdaptiveRunConfig cfg;
  const Trace reference = reference_run(g, kSeed, cfg);

  const std::string dir = scratch_dir("worstcase");
  CheckpointConfig ccfg;
  ccfg.dir = dir;
  ccfg.every = 2;
  {
    RunRig rig(g, kSeed);
    ControllerParams params;
    HybridController controller(params);
    CheckpointManager cp(ccfg, graph_fingerprint(g));
    AdaptiveRunConfig partial = cfg;
    partial.max_rounds = 4;
    partial.checkpoint = &cp;
    (void)run_adaptive(rig.ex, controller, partial);
    ASSERT_EQ(cp.snapshots_written(), 2u);
  }
  flip_byte(dir + "/snap-a.bin", snapshot::kFileHeaderBytes + 1);
  flip_byte(dir + "/snap-b.bin", snapshot::kFileHeaderBytes + 1);
  {
    RoundJournal j(dir + "/journal.bin");
    Writer torn;
    torn.str("round record interrupted by the crash");
    j.append_torn(torn.bytes(), 5);
  }

  RunRig rig(g, kSeed);
  ControllerParams params;
  HybridController controller(params);
  CheckpointManager cp(ccfg, graph_fingerprint(g));
  AdaptiveRunConfig resume = cfg;
  resume.checkpoint = &cp;
  const Trace resumed = run_adaptive(rig.ex, controller, resume);

  expect_traces_equal(resumed, reference);
  EXPECT_EQ(cp.rejected_candidates().size(), 2u);
  EXPECT_TRUE(rig.ex.done());
}

TEST(RecoveryLadder, WrongRunIdentityIsNeverLoaded) {
  const CsrGraph g = gen::union_of_cliques(60, 5);
  constexpr std::uint64_t kSeed = 31;
  const std::string dir = scratch_dir("identity");
  CheckpointConfig ccfg;
  ccfg.dir = dir;
  ccfg.every = 2;
  {
    RunRig rig(g, kSeed);
    ControllerParams params;
    HybridController controller(params);
    CheckpointManager cp(ccfg, graph_fingerprint(g));
    AdaptiveRunConfig partial;
    partial.max_rounds = 4;
    partial.checkpoint = &cp;
    (void)run_adaptive(rig.ex, controller, partial);
  }

  // Different graph -> fingerprint mismatch: both candidates rejected.
  {
    const CsrGraph other = gen::union_of_cliques(60, 4);
    RunRig rig(other, kSeed);
    ControllerParams params;
    HybridController controller(params);
    CheckpointManager cp(ccfg, graph_fingerprint(other));
    auto resume = cp.try_restore(rig.ex, controller);
    EXPECT_FALSE(resume.has_value());
    EXPECT_EQ(cp.rejected_candidates().size(), 2u);
  }

  // Different controller -> name mismatch, same refusal.
  {
    RunRig rig(g, kSeed);
    ControllerParams params;
    AimdController controller(params);
    CheckpointManager cp(ccfg, graph_fingerprint(g));
    auto resume = cp.try_restore(rig.ex, controller);
    EXPECT_FALSE(resume.has_value());
    EXPECT_EQ(cp.rejected_candidates().size(), 2u);
  }
}

TEST(RecoveryLadder, EveryInterruptionPointResumesByteIdentical) {
  // Sweep the kill across every round of the run (the in-process analogue
  // of scripts/run_crash.sh's _Exit sweep): each prefix length must resume
  // into the same final trace.
  const CsrGraph g = gen::union_of_cliques(36, 5);
  constexpr std::uint64_t kSeed = 7;
  AdaptiveRunConfig cfg;
  const Trace reference = reference_run(g, kSeed, cfg);
  ASSERT_GE(reference.steps.size(), 4u);

  for (std::uint32_t kill = 1; kill < reference.steps.size(); ++kill) {
    const std::string dir = scratch_dir("sweep");
    CheckpointConfig ccfg;
    ccfg.dir = dir;
    ccfg.every = 2;
    {
      RunRig rig(g, kSeed);
      ControllerParams params;
      HybridController controller(params);
      CheckpointManager cp(ccfg, graph_fingerprint(g));
      AdaptiveRunConfig partial = cfg;
      partial.max_rounds = kill;
      partial.checkpoint = &cp;
      (void)run_adaptive(rig.ex, controller, partial);
    }
    RunRig rig(g, kSeed);
    ControllerParams params;
    HybridController controller(params);
    CheckpointManager cp(ccfg, graph_fingerprint(g));
    AdaptiveRunConfig resume = cfg;
    resume.checkpoint = &cp;
    const Trace resumed = run_adaptive(rig.ex, controller, resume);
    expect_traces_equal(resumed, reference);
    EXPECT_TRUE(rig.ex.done()) << "kill after round " << kill;
  }
}

}  // namespace
}  // namespace optipar
