#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

namespace optipar {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_EQ(same, 0);
}

TEST(Rng, SameSeedSameStream) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  const auto first = a();
  a.reseed(7);
  EXPECT_EQ(a(), first);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(123);
  for (const std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
    for (int i = 0; i < 2000; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BetweenIsInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.between(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIsInHalfOpenUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsNearHalf) {
  Rng rng(17);
  double sum = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(23);
  for (const std::uint32_t n : {0u, 1u, 2u, 10u, 257u}) {
    auto p = rng.permutation(n);
    ASSERT_EQ(p.size(), n);
    std::sort(p.begin(), p.end());
    for (std::uint32_t i = 0; i < n; ++i) EXPECT_EQ(p[i], i);
  }
}

TEST(Rng, PermutationIsNotIdentityForLargeN) {
  Rng rng(29);
  const auto p = rng.permutation(100);
  std::vector<std::uint32_t> id(100);
  std::iota(id.begin(), id.end(), 0u);
  EXPECT_NE(p, id);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(31);
  std::vector<int> xs = {1, 1, 2, 3, 5, 8, 13};
  auto sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  rng.shuffle(std::span<int>(xs));
  std::sort(xs.begin(), xs.end());
  EXPECT_EQ(xs, sorted);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(37);
  Rng child = a.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == child());
  EXPECT_LT(same, 3);
}

class SampleWithoutReplacementTest
    : public ::testing::TestWithParam<std::pair<std::uint32_t, std::uint32_t>> {
};

TEST_P(SampleWithoutReplacementTest, DistinctInRangeRightCount) {
  const auto [n, k] = GetParam();
  Rng rng(41 + n * 1000 + k);
  const auto sample = rng.sample_without_replacement(n, k);
  EXPECT_EQ(sample.size(), std::min(n, k));
  std::set<std::uint32_t> seen;
  for (const auto v : sample) {
    EXPECT_LT(v, n);
    EXPECT_TRUE(seen.insert(v).second) << "duplicate " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SampleWithoutReplacementTest,
    ::testing::Values(std::pair{10u, 0u}, std::pair{10u, 1u},
                      std::pair{10u, 5u}, std::pair{10u, 10u},
                      std::pair{10u, 15u},  // k > n clamps
                      std::pair{1000u, 3u},  // sparse rejection branch
                      std::pair{1000u, 900u},  // dense Fisher–Yates branch
                      std::pair{1u, 1u}));

TEST(Rng, SampleWithoutReplacementIsUniformish) {
  // Each of 10 values should appear in a 5-of-10 sample about half the time.
  Rng rng(43);
  std::vector<int> hits(10, 0);
  constexpr int kTrials = 20000;
  for (int t = 0; t < kTrials; ++t) {
    for (const auto v : rng.sample_without_replacement(10, 5)) ++hits[v];
  }
  for (const int h : hits) {
    EXPECT_NEAR(static_cast<double>(h) / kTrials, 0.5, 0.02);
  }
}

}  // namespace
}  // namespace optipar
