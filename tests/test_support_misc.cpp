// Table / Options / Timer / padded-counter coverage.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "support/csv.hpp"
#include "support/options.hpp"
#include "support/padded.hpp"
#include "support/timer.hpp"

namespace optipar {
namespace {

TEST(Table, RequiresColumns) {
  EXPECT_THROW((void)Table({}), std::invalid_argument);
}

TEST(Table, RowArityIsChecked) {
  Table t({"a", "b"});
  EXPECT_THROW((void)t.add_row({std::string("x")}), std::invalid_argument);
  t.add_row({std::string("x"), 1.5});
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, FormatCellVariants) {
  EXPECT_EQ(Table::format_cell(std::string("hi")), "hi");
  EXPECT_EQ(Table::format_cell(std::int64_t{42}), "42");
  EXPECT_EQ(Table::format_cell(2.5, 2), "2.5");
  EXPECT_EQ(Table::format_cell(2.0, 4), "2");
  EXPECT_EQ(Table::format_cell(0.126, 2), "0.13");
}

TEST(Table, PrintAlignsColumns) {
  Table t({"name", "value"});
  t.add_row({std::string("alpha"), std::int64_t{1}});
  t.add_row({std::string("b"), std::int64_t{100}});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("100"), std::string::npos);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
}

TEST(Table, CsvRoundtripAndEscaping) {
  Table t({"k", "v"});
  t.add_row({std::string("has,comma"), std::int64_t{1}});
  t.add_row({std::string("has\"quote"), std::int64_t{2}});
  const std::string path = "/tmp/optipar_test_table.csv";
  t.write_csv(path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "k,v");
  std::getline(in, line);
  EXPECT_EQ(line, "\"has,comma\",1");
  std::getline(in, line);
  EXPECT_EQ(line, "\"has\"\"quote\",2");
  std::remove(path.c_str());
}

TEST(Table, WriteCsvToBadPathThrows) {
  Table t({"a"});
  EXPECT_THROW((void)t.write_csv("/nonexistent_dir_xyz/file.csv"),
               std::runtime_error);
}

TEST(Options, ParsesKeyValueFlagsAndPositionals) {
  const char* argv[] = {"prog", "--n=100", "--verbose", "input.txt",
                        "--rho=0.25"};
  Options opt(5, argv);
  EXPECT_TRUE(opt.has("n"));
  EXPECT_EQ(opt.get_int("n", 0), 100);
  EXPECT_TRUE(opt.get_bool("verbose", false));
  EXPECT_DOUBLE_EQ(opt.get_double("rho", 0.0), 0.25);
  ASSERT_EQ(opt.positional().size(), 1u);
  EXPECT_EQ(opt.positional()[0], "input.txt");
}

TEST(Options, FallbacksWhenAbsent) {
  const char* argv[] = {"prog"};
  Options opt(1, argv);
  EXPECT_FALSE(opt.has("x"));
  EXPECT_EQ(opt.get("x", "def"), "def");
  EXPECT_EQ(opt.get_int("x", -7), -7);
  EXPECT_DOUBLE_EQ(opt.get_double("x", 1.5), 1.5);
  EXPECT_TRUE(opt.get_bool("x", true));
}

TEST(Options, BooleanSpellings) {
  const char* argv[] = {"prog", "--a=yes", "--b=off", "--c=1", "--d=false"};
  Options opt(5, argv);
  EXPECT_TRUE(opt.get_bool("a", false));
  EXPECT_FALSE(opt.get_bool("b", true));
  EXPECT_TRUE(opt.get_bool("c", false));
  EXPECT_FALSE(opt.get_bool("d", true));
}

TEST(Options, BadBooleanThrows) {
  const char* argv[] = {"prog", "--a=maybe"};
  Options opt(2, argv);
  EXPECT_THROW((void)opt.get_bool("a", false), std::invalid_argument);
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(t.seconds(), 0.0);
  EXPECT_GE(t.millis(), t.seconds());  // same instant, scaled
}

TEST(Timer, ResetRestarts) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  const double before = t.seconds();
  t.reset();
  EXPECT_LE(t.seconds(), before + 1.0);
}

TEST(PaddedCounter, OccupiesFullCacheLine) {
  static_assert(sizeof(PaddedCounter) >= kCacheLine);
  static_assert(alignof(PaddedCounter) == kCacheLine);
  PaddedCounter c;
  c.bump();
  c.bump(5);
  EXPECT_EQ(c.load(), 6u);
  c.reset();
  EXPECT_EQ(c.load(), 0u);
}

TEST(Padded, WrapsArbitraryTypes) {
  Padded<int> p;
  p.value = 9;
  static_assert(sizeof(Padded<int>) >= kCacheLine);
  EXPECT_EQ(p.value, 9);
}

}  // namespace
}  // namespace optipar
