#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "rt/spec_executor.hpp"
#include "support/thread_pool.hpp"

namespace optipar {
namespace {

/// Record the order tasks were observed by the operator (single thread so
/// the order is deterministic within a round).
struct OrderRecorder {
  std::mutex mu;
  std::vector<TaskId> seen;

  TaskOperator op() {
    return [this](TaskId t, IterationContext&) {
      const std::lock_guard lock(mu);
      seen.push_back(t);
    };
  }
};

TEST(WorklistPolicy, FifoPreservesPushOrder) {
  ThreadPool pool(1);
  OrderRecorder rec;
  SpeculativeExecutor ex(pool, 1, rec.op(), 1, WorklistPolicy::kFifo);
  std::vector<TaskId> tasks{10, 20, 30, 40, 50};
  ex.push_initial(tasks);
  (void)ex.run_round(2);
  (void)ex.run_round(3);
  EXPECT_EQ(rec.seen, (std::vector<TaskId>{10, 20, 30, 40, 50}));
}

TEST(WorklistPolicy, LifoTakesNewestFirst) {
  ThreadPool pool(1);
  OrderRecorder rec;
  SpeculativeExecutor ex(pool, 1, rec.op(), 2, WorklistPolicy::kLifo);
  std::vector<TaskId> tasks{1, 2, 3};
  ex.push_initial(tasks);
  (void)ex.run_round(2);
  EXPECT_EQ(rec.seen, (std::vector<TaskId>{3, 2}));
  (void)ex.run_round(1);
  EXPECT_EQ(rec.seen, (std::vector<TaskId>{3, 2, 1}));
}

TEST(WorklistPolicy, FifoPushedWorkRunsAfterInitialWork) {
  ThreadPool pool(1);
  std::vector<TaskId> order;
  std::mutex mu;
  SpeculativeExecutor ex(
      pool, 1,
      [&](TaskId t, IterationContext& ctx) {
        {
          const std::lock_guard lock(mu);
          order.push_back(t);
        }
        if (t == 1) ctx.push(99);
      },
      3, WorklistPolicy::kFifo);
  std::vector<TaskId> tasks{1, 2};
  ex.push_initial(tasks);
  while (!ex.done()) (void)ex.run_round(1);
  EXPECT_EQ(order, (std::vector<TaskId>{1, 2, 99}));
}

TEST(WorklistPolicy, AllPoliciesDrainEverything) {
  for (const auto policy : {WorklistPolicy::kRandom, WorklistPolicy::kFifo,
                            WorklistPolicy::kLifo}) {
    ThreadPool pool(2);
    std::mutex mu;
    std::set<TaskId> seen;
    SpeculativeExecutor ex(
        pool, 64,
        [&](TaskId t, IterationContext& ctx) {
          ctx.acquire(static_cast<std::uint32_t>(t % 64));
          const std::lock_guard lock(mu);
          seen.insert(t);
        },
        4, policy);
    std::vector<TaskId> tasks;
    for (TaskId t = 0; t < 200; ++t) tasks.push_back(t);
    ex.push_initial(tasks);
    int rounds = 0;
    while (!ex.done() && rounds++ < 1000) (void)ex.run_round(32);
    EXPECT_TRUE(ex.done());
    EXPECT_EQ(seen.size(), 200u);
  }
}

TEST(WorklistPolicy, FifoCompactionKeepsPendingCorrect) {
  // Push enough work that the head-cursor compaction path triggers.
  ThreadPool pool(1);
  SpeculativeExecutor ex(
      pool, 1, [](TaskId, IterationContext&) {}, 5, WorklistPolicy::kFifo);
  std::vector<TaskId> tasks(5000);
  for (TaskId t = 0; t < 5000; ++t) tasks[t] = t;
  ex.push_initial(tasks);
  std::size_t expected = 5000;
  while (!ex.done()) {
    const auto stats = ex.run_round(64);
    expected -= stats.launched;
    ASSERT_EQ(ex.pending(), expected);
  }
}

TEST(WorklistPolicy, PriorityRequiresPriorityFunction) {
  ThreadPool pool(1);
  SpeculativeExecutor ex(pool, 1, [](TaskId, IterationContext&) {}, 6,
                         WorklistPolicy::kPriority);
  std::vector<TaskId> tasks{1};
  EXPECT_THROW((void)ex.push_initial(tasks), std::logic_error);
}

TEST(WorklistPolicy, PriorityRunsSmallestFirst) {
  ThreadPool pool(1);
  OrderRecorder rec;
  SpeculativeExecutor ex(pool, 1, rec.op(), 7, WorklistPolicy::kPriority);
  // Priority = the task id modulo 10, so 23 (3) beats 41 (1)... careful:
  // smaller runs first.
  ex.set_priority_function([](TaskId t) { return t % 10; });
  std::vector<TaskId> tasks{23, 41, 35, 17};  // priorities 3, 1, 5, 7
  ex.push_initial(tasks);
  (void)ex.run_round(2);
  EXPECT_EQ(rec.seen, (std::vector<TaskId>{41, 23}));
  (void)ex.run_round(2);
  EXPECT_EQ(rec.seen, (std::vector<TaskId>{41, 23, 35, 17}));
}

TEST(WorklistPolicy, PriorityReevaluatedOnPush) {
  // A pushed task's priority reflects state at push time, so dynamic
  // priorities (e.g. tentative SSSP distances) work.
  ThreadPool pool(1);
  std::vector<std::uint64_t> dynamic_priority = {5, 1};
  OrderRecorder rec;
  SpeculativeExecutor ex(pool, 2, rec.op(), 8, WorklistPolicy::kPriority);
  ex.set_priority_function(
      [&dynamic_priority](TaskId t) { return dynamic_priority[t]; });
  std::vector<TaskId> tasks{0};
  ex.push_initial(tasks);
  dynamic_priority[0] = 0;  // changing it later does not reorder the heap
  (void)ex.run_round(1);
  EXPECT_EQ(rec.seen, (std::vector<TaskId>{0}));
}

TEST(WorklistPolicy, RandomPolicyIsSeedDeterministic) {
  auto run = [](std::uint64_t seed) {
    ThreadPool pool(1);
    OrderRecorder rec;
    SpeculativeExecutor ex(pool, 1, rec.op(), seed, WorklistPolicy::kRandom);
    std::vector<TaskId> tasks{1, 2, 3, 4, 5, 6, 7, 8};
    ex.push_initial(tasks);
    while (!ex.done()) (void)ex.run_round(3);
    return rec.seen;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));  // overwhelmingly likely for 8 tasks
}

// ---------------------------------------------------------------------------
// Golden single-lane traces: the exact execution orders and per-round commit
// counts the ORIGINAL centralized-worklist executor produced for this
// workload (pool of 1 worker, 8 items, tasks 0..19, seed 12345, rounds of
// 5; committed tasks t < 40 push t + 100). The sharded executor must replay
// them byte-for-byte — this is the determinism contract of DESIGN.md §7:
// with a single lane the draw sequence, the worklist evolution, and hence
// the whole schedule are identical to the centralized implementation.
// ---------------------------------------------------------------------------

struct GoldenTrace {
  std::vector<TaskId> exec_order;
  std::vector<std::uint32_t> per_round_committed;
};

GoldenTrace run_golden_workload(WorklistPolicy policy) {
  ThreadPool pool(1);
  GoldenTrace out;
  std::mutex mu;
  SpeculativeExecutor ex(
      pool, 8,
      [&](TaskId t, IterationContext& ctx) {
        {
          const std::lock_guard lock(mu);
          out.exec_order.push_back(t);
        }
        ctx.acquire(static_cast<std::uint32_t>(t % 8));
        if (t < 40) ctx.push(t + 100);
      },
      /*seed=*/12345, policy);
  std::vector<TaskId> tasks;
  for (TaskId t = 0; t < 20; ++t) tasks.push_back(t);
  ex.push_initial(tasks);
  int rounds = 0;
  while (!ex.done() && rounds++ < 200) {
    out.per_round_committed.push_back(ex.run_round(5).committed);
  }
  return out;
}

TEST(WorklistPolicy, GoldenTraceRandomSingleLaneMatchesCentralizedSeed) {
  const auto got = run_golden_workload(WorklistPolicy::kRandom);
  const std::vector<TaskId> want_order{
      14,  2,   17,  0,   8,   16,  3,   5,   6,   19,  116, 10,  19,
      103, 18,  110, 7,   13,  15,  102, 1,   117, 102, 4,   8,   12,
      108, 119, 114, 106, 108, 101, 15,  9,   100, 113, 105, 18,  100,
      107, 11,  118, 112, 109, 105, 104, 111, 106, 115};
  const std::vector<std::uint32_t> want_committed{4, 4, 4, 3, 5, 3, 4, 4, 5, 4};
  EXPECT_EQ(got.exec_order, want_order);
  EXPECT_EQ(got.per_round_committed, want_committed);
}

TEST(WorklistPolicy, GoldenTraceFifoSingleLaneMatchesCentralizedSeed) {
  const auto got = run_golden_workload(WorklistPolicy::kFifo);
  std::vector<TaskId> want_order;
  for (TaskId t = 0; t < 20; ++t) want_order.push_back(t);
  for (TaskId t = 100; t < 120; ++t) want_order.push_back(t);
  EXPECT_EQ(got.exec_order, want_order);
  EXPECT_EQ(got.per_round_committed,
            (std::vector<std::uint32_t>(8, 5)));
}

TEST(WorklistPolicy, GoldenTraceLifoSingleLaneMatchesCentralizedSeed) {
  const auto got = run_golden_workload(WorklistPolicy::kLifo);
  const std::vector<TaskId> want_order{
      19,  18,  17,  16,  15,  115, 116, 117, 118, 119, 14,  13,  12,  11,
      10,  110, 111, 112, 113, 114, 9,   8,   7,   6,   5,   105, 106, 107,
      108, 109, 4,   3,   2,   1,   0,   100, 101, 102, 103, 104};
  EXPECT_EQ(got.exec_order, want_order);
  EXPECT_EQ(got.per_round_committed,
            (std::vector<std::uint32_t>(8, 5)));
}

}  // namespace
}  // namespace optipar
