#include "model/conflict_ratio.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "model/theory.hpp"

namespace optipar {
namespace {

TEST(ConflictCurve, EdgelessGraphHasZeroRatio) {
  const auto g = CsrGraph::from_edges(30, {});
  Rng rng(1);
  const auto curve = estimate_conflict_curve(g, 20, rng);
  for (std::uint32_t m = 1; m <= 30; ++m) {
    EXPECT_EQ(curve.r_bar(m), 0.0);
    EXPECT_EQ(curve.expected_committed(m), m);
  }
}

TEST(ConflictCurve, CompleteGraphRatioIsExact) {
  // On K_n exactly one task commits per round: k(π, m) = m − 1 always.
  const auto g = gen::complete(12);
  Rng rng(2);
  const auto curve = estimate_conflict_curve(g, 10, rng);
  for (std::uint32_t m = 1; m <= 12; ++m) {
    EXPECT_DOUBLE_EQ(curve.k_bar(m), static_cast<double>(m - 1));
    EXPECT_DOUBLE_EQ(curve.r_bar(m), static_cast<double>(m - 1) / m);
  }
}

TEST(ConflictCurve, RejectsZeroTrials) {
  const auto g = gen::path(4);
  Rng rng(3);
  EXPECT_THROW((void)estimate_conflict_curve(g, 0, rng), std::invalid_argument);
}

TEST(ConflictCurve, Prop2InitialDerivativeMatchesTheory) {
  // Δr̄(1) = r̄(2) − r̄(1) = k̄(2)/2 = d/(2(n−1)) for ANY graph (Prop. 2).
  Rng rng(4);
  struct Case {
    CsrGraph g;
    const char* name;
  };
  std::vector<Case> cases;
  cases.push_back({gen::gnm_random(200, 800, rng), "gnm"});
  cases.push_back({gen::union_of_cliques(200, 7), "cliques"});
  cases.push_back({gen::star(199), "star"});
  for (const auto& c : cases) {
    const auto curve = estimate_conflict_curve(c.g, 40000, rng);
    const double predicted = theory::initial_derivative(
        c.g.num_nodes(), c.g.average_degree());
    const double measured = curve.r_bar(2) - curve.r_bar(1);
    EXPECT_NEAR(measured, predicted, 4 * curve.r_bar_ci95(2)) << c.name;
  }
}

TEST(ConflictCurve, Prop1MonotoneWithinNoise) {
  Rng rng(5);
  const auto g = gen::gnm_random(120, 600, rng);
  const auto curve = estimate_conflict_curve(g, 3000, rng);
  for (std::uint32_t m = 1; m < 120; ++m) {
    EXPECT_GE(curve.r_bar(m + 1) - curve.r_bar(m),
              -(curve.r_bar_ci95(m) + curve.r_bar_ci95(m + 1)))
        << "m=" << m;
  }
}

TEST(ConflictCurve, MatchesThm3ExactlyOnUnionOfCliques) {
  Rng rng(6);
  const std::uint32_t n = 120, d = 5;
  const auto g = gen::union_of_cliques(n, d);
  const auto curve = estimate_conflict_curve(g, 6000, rng);
  for (const std::uint32_t m : {1u, 2u, 5u, 10u, 30u, 60u, 120u}) {
    const double exact = theory::em_union_of_cliques(n, d, m);
    EXPECT_NEAR(curve.expected_committed(m), exact,
                4 * curve.abort_stats[m].ci95() + 1e-9)
        << "m=" << m;
  }
}

TEST(EstimateRAt, AgreesWithCurve) {
  Rng rng(7);
  const auto g = gen::gnm_random(100, 500, rng);
  Rng rng_curve(8);
  const auto curve = estimate_conflict_curve(g, 4000, rng_curve);
  Rng rng_point(9);
  const auto point = estimate_r_at(g, 30, 4000, rng_point);
  EXPECT_NEAR(point.mean(), curve.r_bar(30),
              3 * (point.ci95() + curve.r_bar_ci95(30)));
}

TEST(EstimateRAt, ValidatesArguments) {
  const auto g = gen::path(5);
  Rng rng(10);
  EXPECT_THROW((void)estimate_r_at(g, 0, 10, rng), std::invalid_argument);
  EXPECT_THROW((void)estimate_r_at(g, 6, 10, rng), std::invalid_argument);
}

TEST(EstimateCommittedAt, Example1FromThePaper) {
  // G = K_{n²} ⊎ D_n with n = 12: the max IS has n+1 = 13 nodes, but
  // launching n+1 random tasks yields ≈ 2 committed on average.
  const std::uint32_t n = 12;
  const auto g = gen::clique_plus_isolated(n * n, n);
  Rng rng(11);
  const auto committed = estimate_committed_at(g, n + 1, 20000, rng);
  // Expected: 1 from the clique (if hit) + (n+1)·n/(n²+n) isolated ones ≈ 2.
  EXPECT_NEAR(committed.mean(), 2.0, 0.1);
  EXPECT_LT(committed.mean() + 3 * committed.ci95(), 3.0);
}

TEST(ParallelCurve, MatchesSerialStatistically) {
  Rng rng(21);
  const auto g = gen::gnm_random(200, 800, rng);
  const auto serial = estimate_conflict_curve(g, 2000, rng);
  ThreadPool pool(4);
  const auto parallel = estimate_conflict_curve_parallel(g, 2000, 77, pool);
  for (const std::uint32_t m : {2u, 50u, 100u, 200u}) {
    EXPECT_NEAR(parallel.r_bar(m), serial.r_bar(m),
                4 * (parallel.r_bar_ci95(m) + serial.r_bar_ci95(m)) + 1e-4)
        << "m=" << m;
    EXPECT_EQ(parallel.abort_stats[m].count(), 2000u);
  }
}

TEST(ParallelCurve, DeterministicGivenSeedAndLaneCount) {
  Rng rng(22);
  const auto g = gen::gnm_random(80, 240, rng);
  ThreadPool pool(3);
  const auto a = estimate_conflict_curve_parallel(g, 500, 9, pool);
  const auto b = estimate_conflict_curve_parallel(g, 500, 9, pool);
  for (std::uint32_t m = 0; m <= 80; ++m) {
    EXPECT_DOUBLE_EQ(a.k_bar(m), b.k_bar(m));
  }
}

TEST(ParallelCurve, ExactOnCompleteGraph) {
  const auto g = gen::complete(15);
  ThreadPool pool(2);
  const auto curve = estimate_conflict_curve_parallel(g, 64, 3, pool);
  for (std::uint32_t m = 1; m <= 15; ++m) {
    EXPECT_DOUBLE_EQ(curve.k_bar(m), static_cast<double>(m - 1));
  }
}

TEST(ParallelCurve, RejectsZeroTrials) {
  const auto g = gen::path(4);
  ThreadPool pool(1);
  EXPECT_THROW((void)estimate_conflict_curve_parallel(g, 0, 1, pool),
               std::invalid_argument);
}

TEST(FindMu, CompleteGraphTargetsAreTiny) {
  // On K_n, r̄(m) = (m−1)/m, so r̄(m) <= 0.25 only for m = 1; μ = 1.
  const auto g = gen::complete(16);
  Rng rng(12);
  EXPECT_EQ(find_mu(g, 0.25, 50, rng), 1u);
  // ρ = 0.55 admits m = 2 (r = 1/2 <= 0.55).
  EXPECT_EQ(find_mu(g, 0.55, 50, rng), 2u);
}

TEST(FindMu, EdgelessGraphUsesEverything) {
  const auto g = CsrGraph::from_edges(40, {});
  Rng rng(13);
  EXPECT_EQ(find_mu(g, 0.25, 5, rng), 40u);
}

TEST(FindMu, ScalesWithGraphSizeOnCliques) {
  // For K_d^n with fixed d, the m achieving a given ratio grows with n.
  Rng rng(14);
  const auto small = gen::union_of_cliques(60, 5);
  const auto large = gen::union_of_cliques(240, 5);
  const auto mu_small = find_mu(small, 0.25, 2000, rng);
  const auto mu_large = find_mu(large, 0.25, 2000, rng);
  EXPECT_GT(mu_large, 2 * mu_small);
}

}  // namespace
}  // namespace optipar
