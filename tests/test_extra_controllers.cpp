#include "control/extra.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "control/hybrid.hpp"
#include "graph/generators.hpp"
#include "model/conflict_ratio.hpp"
#include "model/theory.hpp"
#include "sim/run_loop.hpp"

namespace optipar {
namespace {

RoundStats make_round(std::uint32_t launched, double ratio) {
  RoundStats s;
  s.launched = launched;
  s.aborted = static_cast<std::uint32_t>(std::lround(ratio * launched));
  s.committed = s.launched - s.aborted;
  return s;
}

std::uint32_t drive(Controller& c, double ratio, int rounds) {
  std::uint32_t m = c.initial_m();
  for (int i = 0; i < rounds; ++i) m = c.observe(make_round(m, ratio));
  return m;
}

ControllerParams base_params() {
  ControllerParams p;
  p.rho = 0.25;
  p.T = 4;
  p.small_m_regime = false;
  return p;
}

TEST(PidController, ValidatesParameters) {
  auto p = base_params();
  p.rho = 1.5;
  EXPECT_THROW((void)PidController{p}, std::invalid_argument);
  p = base_params();
  p.T = 0;
  EXPECT_THROW((void)PidController{p}, std::invalid_argument);
}

TEST(PidController, GrowsWhenUnderTargetShrinksWhenOver) {
  auto p = base_params();
  p.m0 = 100;
  PidController c(p);
  EXPECT_GT(drive(c, 0.0, static_cast<int>(p.T)), 100u);
  c.reset();
  EXPECT_LT(drive(c, 0.9, static_cast<int>(p.T)), 100u);
}

TEST(PidController, PerWindowChangeIsBounded) {
  auto p = base_params();
  p.m0 = 100;
  p.m_max = 100000;
  PidController c(p);
  const auto m = drive(c, 0.0, static_cast<int>(p.T));
  EXPECT_LE(m, 400u);  // factor clamp of 4x per window
}

TEST(PidController, ConvergesOnLinearPlant) {
  // Plant r(m) = m/1000, rho = 0.25 -> mu = 250.
  auto p = base_params();
  p.m_max = 4096;
  PidController c(p);
  std::uint32_t m = c.initial_m();
  for (int i = 0; i < 400; ++i) {
    m = c.observe(make_round(m, std::min(1.0, m / 1000.0)));
  }
  EXPECT_NEAR(static_cast<double>(m), 250.0, 60.0);
}

TEST(PidController, ResetClearsIntegrator) {
  auto p = base_params();
  PidController c(p);
  drive(c, 0.0, 64);  // wind the integrator up
  c.reset();
  EXPECT_EQ(c.initial_m(), p.m0);
  // Same post-reset trajectory as a fresh controller.
  PidController fresh(p);
  EXPECT_EQ(drive(c, 0.5, 12), drive(fresh, 0.5, 12));
}

TEST(EwmaHybridController, ValidatesParameters) {
  auto p = base_params();
  EXPECT_THROW((void)EwmaHybridController(p, 0.0), std::invalid_argument);
  EXPECT_THROW((void)EwmaHybridController(p, 1.5), std::invalid_argument);
  p.rho = 0.0;
  EXPECT_THROW((void)EwmaHybridController(p, 0.3), std::invalid_argument);
}

TEST(EwmaHybridController, ReactsWithinCooldown) {
  auto p = base_params();
  EwmaHybridController c(p, 0.5, /*cooldown=*/2);
  std::uint32_t m = c.initial_m();
  m = c.observe(make_round(m, 0.0));
  EXPECT_EQ(m, p.m0);  // first round: still cooling down
  m = c.observe(make_round(m, 0.0));
  EXPECT_GT(m, p.m0);  // second round: Recurrence B fires off the EWMA
}

TEST(EwmaHybridController, DeadBandHolds) {
  auto p = base_params();
  p.m0 = 80;
  EwmaHybridController c(p, 0.5, 1);
  EXPECT_EQ(drive(c, 0.25, 30), 80u);  // exactly on target
}

TEST(EwmaHybridController, TracksTargetOnStationaryGraph) {
  Rng rng(1);
  const auto g = gen::random_with_average_degree(1200, 12, rng);
  StationaryWorkload w(g);
  auto p = base_params();
  EwmaHybridController c(p, 0.3, 2);
  RunLoopConfig cfg;
  cfg.max_steps = 250;
  const auto trace = run_controlled(c, w, cfg, rng);
  EXPECT_NEAR(trace.mean_conflict_ratio(120), 0.25, 0.07);
}

TEST(WithWarmStart, SetsM0FromCor3) {
  auto p = base_params();
  const auto warmed = with_warm_start(p, 1700, 16.0);
  EXPECT_EQ(warmed.m0, theory::warm_start_m(1700, 16.0, p.rho));
  EXPECT_GT(warmed.m0, 2u);
}

TEST(WithWarmStart, HybridStartsAheadAndConvergesFaster) {
  Rng rng(2);
  const auto g = gen::random_with_average_degree(2000, 16, rng);
  const auto mu = find_mu(g, 0.25, 300, rng);

  auto run_with = [&](const ControllerParams& p) {
    HybridController c(p);
    StationaryWorkload w(g);
    RunLoopConfig cfg;
    cfg.max_steps = 200;
    Rng run_rng(3);
    return run_controlled(c, w, cfg, run_rng);
  };
  auto p = base_params();
  const auto cold = run_with(p);
  const auto warm = run_with(with_warm_start(p, 2000, 16.0));
  EXPECT_LE(warm.convergence_step(mu, 0.30, 5),
            cold.convergence_step(mu, 0.30, 5));
  // The warm start must respect the worst-case guarantee from round one.
  EXPECT_LE(warm.steps.front().conflict_ratio(), 0.40);
}

}  // namespace
}  // namespace optipar
