#include "model/permutation_sweep.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/algos.hpp"
#include "graph/generators.hpp"

namespace optipar {
namespace {

TEST(PermutationSweep, RejectsNonPermutations) {
  const auto g = gen::path(3);
  EXPECT_THROW((void)sweep_full_permutation(g, std::vector<NodeId>{0, 1}),
               std::invalid_argument);
  EXPECT_THROW((void)sweep_full_permutation(g, std::vector<NodeId>{0, 0, 1}),
               std::invalid_argument);
  EXPECT_THROW((void)sweep_full_permutation(g, std::vector<NodeId>{0, 1, 9}),
               std::invalid_argument);
}

TEST(PermutationSweep, NoEdgesMeansNoAborts) {
  const auto g = CsrGraph::from_edges(6, {});
  Rng rng(1);
  const auto perm = rng.permutation(6);
  const auto sweep = sweep_full_permutation(g, perm);
  for (std::uint32_t m = 0; m <= 6; ++m) {
    EXPECT_EQ(sweep.aborts_at_prefix[m], 0u);
  }
}

TEST(PermutationSweep, CompleteGraphAbortsAllButFirst) {
  const auto g = gen::complete(5);
  Rng rng(2);
  const auto perm = rng.permutation(5);
  const auto sweep = sweep_full_permutation(g, perm);
  for (std::uint32_t m = 1; m <= 5; ++m) {
    EXPECT_EQ(sweep.aborts_at_prefix[m], m - 1);
    EXPECT_DOUBLE_EQ(sweep.conflict_ratio(m),
                     static_cast<double>(m - 1) / m);
  }
}

TEST(PermutationSweep, PathIdentityOrder) {
  const auto g = gen::path(5);
  std::vector<NodeId> perm = {0, 1, 2, 3, 4};
  const auto sweep = sweep_full_permutation(g, perm);
  // 0 commits, 1 aborts (nbr 0), 2 commits, 3 aborts, 4 commits.
  EXPECT_EQ(sweep.committed,
            (std::vector<std::uint8_t>{1, 0, 1, 0, 1}));
  EXPECT_EQ(sweep.aborts_at_prefix,
            (std::vector<std::uint32_t>{0, 0, 1, 1, 2, 2}));
}

TEST(PermutationSweep, CommittedSetEqualsGreedyMis) {
  Rng rng(3);
  const auto g = gen::gnm_random(60, 150, rng);
  for (int trial = 0; trial < 20; ++trial) {
    const auto perm = rng.permutation(60);
    const auto sweep = sweep_full_permutation(g, perm);
    const auto mis = greedy_mis(g, perm);
    std::vector<std::uint8_t> expected(60, 0);
    for (const NodeId v : mis) expected[v] = 1;
    EXPECT_EQ(sweep.committed, expected);
    // The committed set of a full permutation is a maximal IS.
    EXPECT_TRUE(is_maximal_independent_set(g, mis));
    // Total aborts == n − |MIS|.
    EXPECT_EQ(sweep.aborts_at_prefix[60], 60 - mis.size());
  }
}

TEST(PermutationSweep, AbortPrefixIsNonDecreasingAndStepwise) {
  Rng rng(4);
  const auto g = gen::gnm_random(100, 400, rng);
  const auto perm = rng.permutation(100);
  const auto sweep = sweep_full_permutation(g, perm);
  for (std::uint32_t m = 1; m <= 100; ++m) {
    const auto delta =
        sweep.aborts_at_prefix[m] - sweep.aborts_at_prefix[m - 1];
    EXPECT_LE(delta, 1u);
  }
}

TEST(PermutationSweep, PrefixConsistencyWithRoundOutcome) {
  // The key property the single-pass sweep exploits: the length-m prefix
  // of the permutation, run as a standalone round, aborts exactly
  // aborts_at_prefix[m] tasks.
  Rng rng(5);
  const auto g = gen::gnm_random(50, 200, rng);
  const auto perm = rng.permutation(50);
  const auto sweep = sweep_full_permutation(g, perm);
  for (const std::uint32_t m : {1u, 2u, 7u, 25u, 50u}) {
    const std::span<const NodeId> prefix(perm.data(), m);
    const auto outcome = round_outcome(g, prefix);
    std::uint32_t aborted = 0;
    for (const auto c : outcome) aborted += (c == 0);
    EXPECT_EQ(aborted, sweep.aborts_at_prefix[m]) << "m=" << m;
  }
}

TEST(RoundOutcome, AbortedTaskDoesNotBlockLaterTasks) {
  // Path 0-1-2, order {0, 1, 2}: 1 aborts on 0; 2 is adjacent only to the
  // aborted 1, so 2 commits — the paper's §2.1 rule.
  const auto g = gen::path(3);
  const auto outcome = round_outcome(g, std::vector<NodeId>{0, 1, 2});
  EXPECT_EQ(outcome, (std::vector<std::uint8_t>{1, 0, 1}));
}

TEST(RoundOutcome, EmptyActiveSet) {
  const auto g = gen::path(3);
  EXPECT_TRUE(round_outcome(g, std::vector<NodeId>{}).empty());
}

TEST(RoundOutcome, CommittedIsMaximalInInducedSubgraph) {
  Rng rng(6);
  const auto g = gen::gnm_random(80, 320, rng);
  for (int trial = 0; trial < 20; ++trial) {
    const auto active = rng.sample_without_replacement(80, 30);
    const auto outcome = round_outcome(g, active);
    // Every aborted task must have a committed neighbor among the active
    // set (maximality), and no two committed tasks may be adjacent.
    std::vector<NodeId> committed;
    for (std::size_t i = 0; i < active.size(); ++i) {
      if (outcome[i]) committed.push_back(active[i]);
    }
    EXPECT_TRUE(is_independent_set(g, committed));
    for (std::size_t i = 0; i < active.size(); ++i) {
      if (outcome[i]) continue;
      bool blocked = false;
      for (const NodeId c : committed) {
        if (g.has_edge(active[i], c)) {
          blocked = true;
          break;
        }
      }
      EXPECT_TRUE(blocked) << "aborted task with no committed neighbor";
    }
  }
}

}  // namespace
}  // namespace optipar
