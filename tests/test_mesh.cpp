#include "apps/dmr/mesh.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace optipar::dmr {
namespace {

/// Two CCW triangles sharing the edge (1, 2):
///   t0 = (0, 1, 2), t1 = (1, 3, 2) with points forming a unit square.
struct TwoTriangleMesh {
  Mesh mesh;
  TriId t0, t1;

  TwoTriangleMesh() {
    mesh.add_point({0, 0});  // 0
    mesh.add_point({1, 0});  // 1
    mesh.add_point({0, 1});  // 2
    mesh.add_point({1, 1});  // 3
    t0 = mesh.create_triangle(0, 1, 2);
    t1 = mesh.create_triangle(1, 3, 2);
    // Shared edge (1,2): opposite vertex 0 in t0 (slot 0) and 3 in t1
    // (slot 1).
    mesh.set_neighbor(t0, 0, t1);
    mesh.set_neighbor(t1, 1, t0);
  }
};

TEST(Mesh, PointAndTriangleBookkeeping) {
  TwoTriangleMesh f;
  EXPECT_EQ(f.mesh.num_points(), 4u);
  EXPECT_EQ(f.mesh.num_triangle_slots(), 2u);
  EXPECT_EQ(f.mesh.num_alive_triangles(), 2u);
  EXPECT_TRUE(f.mesh.is_alive(f.t0));
  EXPECT_EQ(f.mesh.tri(f.t0).v[0], 0u);
}

TEST(Mesh, ValidatesConsistentAdjacency) {
  TwoTriangleMesh f;
  EXPECT_TRUE(f.mesh.validate());
}

TEST(Mesh, DetectsAsymmetricAdjacency) {
  TwoTriangleMesh f;
  f.mesh.set_neighbor(f.t1, 1, kNoNeighbor);  // break the back-link
  EXPECT_FALSE(f.mesh.validate());
}

TEST(Mesh, DetectsClockwiseTriangle) {
  Mesh m;
  m.add_point({0, 0});
  m.add_point({1, 0});
  m.add_point({0, 1});
  m.create_triangle(0, 2, 1);  // CW
  EXPECT_FALSE(m.validate());
}

TEST(Mesh, KillAndReviveRoundTrip) {
  TwoTriangleMesh f;
  f.mesh.kill_triangle(f.t1);
  EXPECT_FALSE(f.mesh.is_alive(f.t1));
  EXPECT_EQ(f.mesh.num_alive_triangles(), 1u);
  EXPECT_THROW((void)f.mesh.kill_triangle(f.t1), std::logic_error);
  f.mesh.revive_triangle(f.t1);
  EXPECT_TRUE(f.mesh.is_alive(f.t1));
  EXPECT_THROW((void)f.mesh.revive_triangle(f.t1), std::logic_error);
  EXPECT_TRUE(f.mesh.validate());
}

TEST(Mesh, SlotLookups) {
  TwoTriangleMesh f;
  EXPECT_EQ(f.mesh.slot_of_neighbor(f.t0, f.t1), 0);
  EXPECT_EQ(f.mesh.slot_of_neighbor(f.t1, f.t0), 1);
  EXPECT_EQ(f.mesh.slot_of_neighbor(f.t0, 999), -1);
  EXPECT_EQ(f.mesh.slot_of_vertex(f.t0, 1), 1);
  EXPECT_EQ(f.mesh.slot_of_vertex(f.t0, 3), -1);
}

TEST(Mesh, ContainsIsEdgeInclusive) {
  TwoTriangleMesh f;
  EXPECT_TRUE(f.mesh.contains(f.t0, {0.2, 0.2}));
  EXPECT_FALSE(f.mesh.contains(f.t0, {0.9, 0.9}));
  EXPECT_TRUE(f.mesh.contains(f.t0, {0.5, 0.5}));  // on the shared edge
  EXPECT_TRUE(f.mesh.contains(f.t1, {0.5, 0.5}));
}

TEST(Mesh, LocateByWalkAndFallback) {
  TwoTriangleMesh f;
  EXPECT_EQ(f.mesh.locate({0.1, 0.1}, f.t1), f.t0);  // walks across
  EXPECT_EQ(f.mesh.locate({0.9, 0.9}, f.t0), f.t1);
  EXPECT_EQ(f.mesh.locate({5, 5}, f.t0), kNoNeighbor);  // outside
}

TEST(Mesh, LocateWithDeadHintStillWorks) {
  TwoTriangleMesh f;
  f.mesh.kill_triangle(f.t0);
  EXPECT_EQ(f.mesh.locate({0.9, 0.9}, f.t0), f.t1);
}

TEST(Mesh, GeometryShortcuts) {
  TwoTriangleMesh f;
  EXPECT_DOUBLE_EQ(f.mesh.shortest_edge_of(f.t0), 1.0);
  EXPECT_GT(f.mesh.min_angle_of(f.t0), 0.7);  // 45° ≈ 0.785
  const Point2 cc = f.mesh.circumcenter_of(f.t0);
  EXPECT_NEAR(cc.x, 0.5, 1e-12);
  EXPECT_NEAR(cc.y, 0.5, 1e-12);
  EXPECT_TRUE(f.mesh.in_circumcircle(f.t0, {0.5, 0.4}));
  EXPECT_FALSE(f.mesh.in_circumcircle(f.t0, {2, 2}));
}

TEST(Mesh, AliveTrianglesList) {
  TwoTriangleMesh f;
  f.mesh.kill_triangle(f.t0);
  EXPECT_EQ(f.mesh.alive_triangles(), std::vector<TriId>{f.t1});
}

TEST(Mesh, LocallyDelaunayOnSquare) {
  // The square split along (1,2): each opposite vertex lies exactly ON the
  // other triangle's circumcircle (cocircular) — not strictly inside — so
  // the configuration is locally Delaunay.
  TwoTriangleMesh f;
  EXPECT_TRUE(f.mesh.is_locally_delaunay());
}

TEST(Mesh, DetectsNonDelaunayConfiguration) {
  Mesh m;
  m.add_point({0, 0});    // 0
  m.add_point({1, 0});    // 1
  m.add_point({0, 1});    // 2
  m.add_point({0.9, 0.9});  // 3 — inside circumcircle of (0,1,2)
  const TriId t0 = m.create_triangle(0, 1, 2);
  const TriId t1 = m.create_triangle(1, 3, 2);
  m.set_neighbor(t0, 0, t1);
  m.set_neighbor(t1, 1, t0);
  EXPECT_TRUE(m.validate());
  EXPECT_FALSE(m.is_locally_delaunay());
}

TEST(Mesh, ReserveEnforcesCapacity) {
  Mesh m;
  m.reserve(2, 1);
  m.add_point({0, 0});
  m.add_point({1, 0});
  EXPECT_THROW((void)m.add_point({2, 0}), std::length_error);
  EXPECT_THROW((void)m.reserve(1, 1), std::length_error);  // below current size
}

}  // namespace
}  // namespace optipar::dmr
