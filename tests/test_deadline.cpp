// Deadlines and cooperative interruption (DESIGN.md §13): JobDeadline
// semantics, the AdaptiveRun stepper's equivalence with run_adaptive, and
// the interruption contract — deadline expiry / cancellation at a round
// boundary forces a snapshot and raises JobInterrupted, after which a fresh
// process resumes from the exact interruption point and finishes with a
// trace byte-identical to an uninterrupted run.
#include "support/deadline.hpp"

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "control/hybrid.hpp"
#include "graph/generators.hpp"
#include "rt/adaptive_executor.hpp"
#include "rt/checkpoint.hpp"
#include "rt/spec_executor.hpp"

namespace optipar {
namespace {

std::string scratch_dir(const std::string& name) {
  const std::string dir = "/tmp/optipar_deadline_" + name;
  ::mkdir(dir.c_str(), 0755);
  for (const char* f : {"/snap-a.bin", "/snap-b.bin", "/journal.bin",
                        "/snap-a.bin.tmp", "/snap-b.bin.tmp"}) {
    std::remove((dir + f).c_str());
  }
  return dir;
}

/// Same single-lane closed-neighborhood workload the checkpoint suite uses:
/// the byte-identity contract is defined over one lane (DESIGN.md §11).
struct RunRig {
  explicit RunRig(const CsrGraph& graph, std::uint64_t seed)
      : pool(1),
        ex(
            pool, graph.num_nodes(),
            [&graph](TaskId t, IterationContext& ctx) {
              const auto v = static_cast<NodeId>(t);
              ctx.acquire(v);
              for (const NodeId u : graph.neighbors(v)) ctx.acquire(u);
            },
            seed) {
    std::vector<TaskId> tasks(graph.num_nodes());
    std::iota(tasks.begin(), tasks.end(), TaskId{0});
    ex.push_initial(tasks);
  }

  ThreadPool pool;
  SpeculativeExecutor ex;
};

void expect_traces_equal(const Trace& got, const Trace& want) {
  ASSERT_EQ(got.steps.size(), want.steps.size());
  for (std::size_t i = 0; i < want.steps.size(); ++i) {
    const StepRecord& a = got.steps[i];
    const StepRecord& b = want.steps[i];
    EXPECT_EQ(a.step, b.step) << "round " << i;
    EXPECT_EQ(a.m, b.m) << "round " << i;
    EXPECT_EQ(a.launched, b.launched) << "round " << i;
    EXPECT_EQ(a.committed, b.committed) << "round " << i;
    EXPECT_EQ(a.aborted, b.aborted) << "round " << i;
    EXPECT_EQ(a.pending_after, b.pending_after) << "round " << i;
  }
}

// ---------------------------------------------------------------------------
// JobDeadline semantics
// ---------------------------------------------------------------------------

TEST(JobDeadline, DefaultIsUnlimited) {
  const JobDeadline d;
  EXPECT_TRUE(d.unlimited());
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.remaining_ms(), JobDeadline::kUnlimitedMs);
}

TEST(JobDeadline, NonPositiveTimeoutMeansUnlimited) {
  EXPECT_TRUE(JobDeadline::after_ms(0).unlimited());
  EXPECT_TRUE(JobDeadline::after_ms(-5).unlimited());
  EXPECT_FALSE(JobDeadline::after_ms(0).expired());
}

TEST(JobDeadline, ExpiresAndClampsAtZero) {
  const auto d = JobDeadline::after_ms(1);
  EXPECT_FALSE(d.unlimited());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remaining_ms(), 0);
}

TEST(JobDeadline, GenerousDeadlineIsNotExpired) {
  const auto d = JobDeadline::after_ms(60'000);
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_ms(), 0);
  EXPECT_LE(d.remaining_ms(), 60'000);
}

// ---------------------------------------------------------------------------
// Stepper equivalence
// ---------------------------------------------------------------------------

TEST(AdaptiveRunStepper, StepLoopMatchesRunAdaptive) {
  const CsrGraph g = gen::union_of_cliques(60, 5);
  constexpr std::uint64_t kSeed = 17;

  RunRig one_shot(g, kSeed);
  ControllerParams params;
  HybridController c1(params);
  const Trace reference = run_adaptive(one_shot.ex, c1, {});
  ASSERT_GT(reference.steps.size(), 3u);

  RunRig stepped(g, kSeed);
  HybridController c2(params);
  AdaptiveRun run(stepped.ex, c2, {});
  EXPECT_FALSE(run.resumed());
  std::uint64_t rounds = 0;
  while (run.step()) ++rounds;
  EXPECT_TRUE(run.finished());
  EXPECT_EQ(rounds, reference.steps.size());
  expect_traces_equal(run.trace(), reference);
}

TEST(AdaptiveRunStepper, InterleavedRunsDoNotPerturbEachOther) {
  // Two independent jobs stepped round-robin off the same thread pool must
  // each produce the trace they would have produced alone.
  const CsrGraph ga = gen::union_of_cliques(60, 5);
  const CsrGraph gb = gen::union_of_cliques(49, 6);
  ControllerParams params;

  RunRig ra_solo(ga, 3);
  HybridController ca_solo(params);
  const Trace want_a = run_adaptive(ra_solo.ex, ca_solo, {});
  RunRig rb_solo(gb, 4);
  HybridController cb_solo(params);
  const Trace want_b = run_adaptive(rb_solo.ex, cb_solo, {});

  RunRig ra(ga, 3);
  RunRig rb(gb, 4);
  HybridController ca(params), cb(params);
  AdaptiveRun job_a(ra.ex, ca, {});
  AdaptiveRun job_b(rb.ex, cb, {});
  bool live_a = true, live_b = true;
  while (live_a || live_b) {
    if (live_a) live_a = job_a.step();
    if (live_b) live_b = job_b.step();
  }
  expect_traces_equal(job_a.trace(), want_a);
  expect_traces_equal(job_b.trace(), want_b);
}

// ---------------------------------------------------------------------------
// Interruption and resume
// ---------------------------------------------------------------------------

TEST(Interruption, ExpiredDeadlineRaisesBeforeRunningARound) {
  const CsrGraph g = gen::union_of_cliques(60, 5);
  RunRig rig(g, 17);
  ControllerParams params;
  HybridController controller(params);
  AdaptiveRunConfig cfg;
  cfg.deadline = JobDeadline::after_ms(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  AdaptiveRun run(rig.ex, controller, cfg);
  try {
    (void)run.step();
    FAIL() << "expected JobInterrupted";
  } catch (const JobInterrupted& e) {
    EXPECT_EQ(e.reason(), JobInterrupted::Reason::kDeadline);
    EXPECT_EQ(e.rounds_done(), 0u);
    EXPECT_TRUE(e.partial_trace.steps.empty());
  }
}

TEST(Interruption, CancelFlagRaisesAtTheNextBoundary) {
  const CsrGraph g = gen::union_of_cliques(60, 5);
  RunRig rig(g, 17);
  ControllerParams params;
  HybridController controller(params);
  std::atomic<bool> cancel{false};
  AdaptiveRunConfig cfg;
  cfg.cancel = &cancel;
  AdaptiveRun run(rig.ex, controller, cfg);
  ASSERT_TRUE(run.step());
  ASSERT_TRUE(run.step());
  cancel.store(true);
  try {
    (void)run.step();
    FAIL() << "expected JobInterrupted";
  } catch (const JobInterrupted& e) {
    EXPECT_EQ(e.reason(), JobInterrupted::Reason::kCancelled);
    EXPECT_EQ(e.rounds_done(), 2u);
    EXPECT_EQ(e.partial_trace.steps.size(), 2u);
  }
}

TEST(Interruption, RunAdaptiveHonoursTheDeadlineConfig) {
  // The one-shot form (what `optipar_cli run --timeout-ms` drives) shares
  // the stepper, so an already-expired deadline must interrupt it too.
  const CsrGraph g = gen::union_of_cliques(60, 5);
  RunRig rig(g, 17);
  ControllerParams params;
  HybridController controller(params);
  AdaptiveRunConfig cfg;
  cfg.deadline = JobDeadline::after_ms(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_THROW((void)run_adaptive(rig.ex, controller, cfg), JobInterrupted);
}

TEST(Interruption, CancelForcesASnapshotAndResumeIsByteIdentical) {
  // Cancel mid-run with checkpointing attached, then finish the job in a
  // fresh rig: the final trace must equal the uninterrupted reference, and
  // the resumed prefix must replay the journalled rounds (full-history
  // trace, not just the tail).
  const CsrGraph g = gen::union_of_cliques(60, 5);
  constexpr std::uint64_t kSeed = 31;
  RunRig ref_rig(g, kSeed);
  ControllerParams params;
  HybridController ref_controller(params);
  const Trace reference = run_adaptive(ref_rig.ex, ref_controller, {});
  ASSERT_GT(reference.steps.size(), 4u);

  const std::string dir = scratch_dir("cancelresume");
  CheckpointConfig ccfg;
  ccfg.dir = dir;
  ccfg.every = 100;  // cadence never fires; only the forced snapshot exists

  {
    RunRig rig(g, kSeed);
    HybridController controller(params);
    CheckpointManager cp(ccfg, graph_fingerprint(g));
    std::atomic<bool> cancel{false};
    AdaptiveRunConfig cfg;
    cfg.checkpoint = &cp;
    cfg.cancel = &cancel;
    AdaptiveRun run(rig.ex, controller, cfg);
    ASSERT_TRUE(run.step());
    ASSERT_TRUE(run.step());
    ASSERT_TRUE(run.step());
    cancel.store(true);
    EXPECT_THROW((void)run.step(), JobInterrupted);
    EXPECT_GE(cp.snapshots_written(), 1u);
  }

  RunRig rig(g, kSeed);
  HybridController controller(params);
  CheckpointManager cp(ccfg, graph_fingerprint(g));
  AdaptiveRunConfig cfg;
  cfg.checkpoint = &cp;
  AdaptiveRun run(rig.ex, controller, cfg);
  EXPECT_TRUE(run.resumed());
  EXPECT_EQ(run.next_round(), 3u);
  while (run.step()) {
  }
  expect_traces_equal(run.trace(), reference);
  EXPECT_TRUE(rig.ex.done());
}

TEST(Interruption, CheckpointNowMakesAnyBoundaryResumable) {
  // The serve daemon's shutdown path: force a snapshot at an arbitrary
  // boundary, abandon the run, resume in a fresh rig.
  const CsrGraph g = gen::union_of_cliques(49, 6);
  constexpr std::uint64_t kSeed = 7;
  RunRig ref_rig(g, kSeed);
  ControllerParams params;
  HybridController ref_controller(params);
  const Trace reference = run_adaptive(ref_rig.ex, ref_controller, {});
  ASSERT_GT(reference.steps.size(), 2u);

  const std::string dir = scratch_dir("forcednow");
  CheckpointConfig ccfg;
  ccfg.dir = dir;
  ccfg.every = 100;

  {
    RunRig rig(g, kSeed);
    HybridController controller(params);
    CheckpointManager cp(ccfg, graph_fingerprint(g));
    AdaptiveRunConfig cfg;
    cfg.checkpoint = &cp;
    AdaptiveRun run(rig.ex, controller, cfg);
    ASSERT_TRUE(run.step());
    ASSERT_TRUE(run.step());
    run.checkpoint_now();
    EXPECT_GE(cp.snapshots_written(), 1u);
  }

  RunRig rig(g, kSeed);
  HybridController controller(params);
  CheckpointManager cp(ccfg, graph_fingerprint(g));
  AdaptiveRunConfig cfg;
  cfg.checkpoint = &cp;
  AdaptiveRun run(rig.ex, controller, cfg);
  EXPECT_TRUE(run.resumed());
  while (run.step()) {
  }
  expect_traces_equal(run.trace(), reference);
}

}  // namespace
}  // namespace optipar
