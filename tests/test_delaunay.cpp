#include "apps/dmr/delaunay.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "rt/undo_log.hpp"
#include "support/rng.hpp"

namespace optipar::dmr {
namespace {

std::vector<Point2> random_points(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Point2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform() * 100.0, rng.uniform() * 100.0});
  }
  return pts;
}

TEST(BuildDelaunay, RejectsBadInput) {
  Mesh m;
  EXPECT_THROW((void)build_delaunay(m, std::vector<Point2>{}),
               std::invalid_argument);
  Mesh m2;
  m2.add_point({0, 0});
  EXPECT_THROW((void)build_delaunay(m2, random_points(3, 1)),
               std::invalid_argument);  // non-empty mesh
}

TEST(BuildDelaunay, SinglePoint) {
  Mesh m;
  const auto ids = build_delaunay(m, std::vector<Point2>{{5, 5}});
  EXPECT_EQ(ids.size(), 1u);
  EXPECT_EQ(m.num_alive_triangles(), 3u);  // super-triangle fanned once
  EXPECT_TRUE(m.validate());
}

class BuildDelaunayTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BuildDelaunayTest, StructureDelaunayAndEuler) {
  const std::size_t n = GetParam();
  Mesh m;
  const auto ids = build_delaunay(m, random_points(n, 42 + n));
  EXPECT_EQ(ids.size(), n);  // random doubles: no duplicates expected
  EXPECT_TRUE(m.validate());
  EXPECT_TRUE(m.is_locally_delaunay());
  // Triangulation of n interior + 3 super vertices where the convex hull
  // is the super-triangle: T = 2·(n+3) − 2 − 3 = 2n + 1.
  EXPECT_EQ(m.num_alive_triangles(), 2 * n + 1);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BuildDelaunayTest,
                         ::testing::Values(2, 5, 20, 100, 400));

TEST(BuildDelaunay, EveryInputPointIsLocatable) {
  Mesh m;
  const auto pts = random_points(60, 7);
  build_delaunay(m, pts);
  const auto alive = m.alive_triangles();
  ASSERT_FALSE(alive.empty());
  for (const auto& p : pts) {
    EXPECT_NE(m.locate(p, alive.front()), kNoNeighbor);
  }
}

TEST(BuildDelaunay, DuplicatePointsAreSkipped) {
  Mesh m;
  std::vector<Point2> pts = {{1, 1}, {2, 2}, {1, 1}};
  const auto ids = build_delaunay(m, pts);
  EXPECT_EQ(ids.size(), 2u);
  EXPECT_TRUE(m.validate());
  EXPECT_TRUE(m.is_locally_delaunay());
}

TEST(BuildDelaunay, RegularGridPointsSurviveCocircularity) {
  // A k x k lattice is the worst case for the incircle predicate: every
  // unit square's four corners are exactly cocircular. The triangulation
  // must still be structurally valid and locally Delaunay (cocircular
  // neighbors count as Delaunay: the test is strict containment).
  std::vector<Point2> pts;
  for (int x = 0; x < 8; ++x) {
    for (int y = 0; y < 8; ++y) {
      pts.push_back({static_cast<double>(x), static_cast<double>(y)});
    }
  }
  Mesh m;
  const auto ids = build_delaunay(m, pts);
  EXPECT_EQ(ids.size(), 64u);
  EXPECT_TRUE(m.validate());
  EXPECT_TRUE(m.is_locally_delaunay());
  EXPECT_EQ(m.num_alive_triangles(), 2 * 64 + 1);
}

TEST(BuildDelaunay, CollinearPointsOnALine) {
  // All points collinear: the triangulation degenerates to fans against
  // the super-triangle; must stay structurally valid.
  std::vector<Point2> pts;
  for (int i = 0; i < 12; ++i) pts.push_back({static_cast<double>(i), 0.0});
  Mesh m;
  const auto ids = build_delaunay(m, pts);
  EXPECT_EQ(ids.size(), 12u);
  EXPECT_TRUE(m.validate());
}

TEST(BuildDelaunay, ClusteredAndFarPointsMix) {
  // A tight cluster plus far outliers stresses the locate walk and the
  // circumcircle radii spread.
  Rng rng(99);
  std::vector<Point2> pts;
  for (int i = 0; i < 30; ++i) {
    pts.push_back({50.0 + rng.uniform() * 0.01, 50.0 + rng.uniform() * 0.01});
  }
  pts.push_back({0.0, 0.0});
  pts.push_back({100.0, 0.0});
  pts.push_back({0.0, 100.0});
  Mesh m;
  build_delaunay(m, pts);
  EXPECT_TRUE(m.validate());
  EXPECT_TRUE(m.is_locally_delaunay());
}

TEST(InsertPoint, DegenerateSeedLeavesMeshUntouched) {
  Mesh m;
  build_delaunay(m, random_points(10, 9));
  const auto before_alive = m.num_alive_triangles();
  const auto before_slots = m.num_triangle_slots();
  // A point far outside every circumcircle of the seed: pick a corner of
  // the super-triangle's neighborhood — use an existing vertex location
  // (collides with a cavity vertex -> rejected).
  const auto alive = m.alive_triangles();
  const TriId seed = alive.front();
  const PointId dup = m.add_point(m.corner(seed, 0));
  const auto res = insert_point(m, dup, seed, nullptr);
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(m.num_alive_triangles(), before_alive);
  EXPECT_EQ(m.num_triangle_slots(), before_slots);
  EXPECT_TRUE(m.validate());
}

TEST(InsertPoint, HooksSeeEveryMutationAndUndoRestores) {
  Mesh m;
  build_delaunay(m, random_points(40, 11));
  const auto alive_before = m.alive_triangles();

  // Insert the circumcenter of some interior triangle with full hooks.
  TriId seed = kNoNeighbor;
  for (const TriId t : alive_before) {
    const auto& tri = m.tri(t);
    if (tri.v[0] >= kNumSuperVertices && tri.v[1] >= kNumSuperVertices &&
        tri.v[2] >= kNumSuperVertices) {
      const Point2 cc = m.circumcenter_of(t);
      if (m.contains(t, cc) || m.in_circumcircle(t, cc)) {
        seed = t;
        break;
      }
    }
  }
  ASSERT_NE(seed, kNoNeighbor);

  UndoLog undo;
  std::vector<TriId> touched;
  std::vector<TriId> created;
  InsertHooks hooks;
  hooks.touch = [&](TriId t) { touched.push_back(t); };
  hooks.on_undo = [&](std::function<void()> f) { undo.record(std::move(f)); };
  hooks.created = [&](TriId t) { created.push_back(t); };

  const PointId p = m.add_point(m.circumcenter_of(seed));
  const auto res = insert_point(m, p, seed, &hooks);
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.created, created);
  EXPECT_FALSE(created.empty());
  EXPECT_FALSE(touched.empty());
  EXPECT_EQ(touched.front(), seed);
  EXPECT_TRUE(m.validate());

  // Roll everything back: the alive set must be exactly what it was.
  undo.rollback();
  EXPECT_EQ(m.alive_triangles(), alive_before);
  EXPECT_TRUE(m.validate());
  EXPECT_TRUE(m.is_locally_delaunay());
}

TEST(InsertPoint, SequentialInsertKeepsDelaunayProperty) {
  Mesh m;
  build_delaunay(m, random_points(30, 13));
  Rng rng(14);
  const auto alive = m.alive_triangles();
  TriId hint = alive.front();
  for (int i = 0; i < 20; ++i) {
    const Point2 p{rng.uniform() * 100.0, rng.uniform() * 100.0};
    const TriId container = m.locate(p, hint);
    ASSERT_NE(container, kNoNeighbor);
    const PointId pid = m.add_point(p);
    const auto res = insert_point(m, pid, container, nullptr);
    if (res.ok) hint = res.created.front();
    EXPECT_TRUE(m.validate());
  }
  EXPECT_TRUE(m.is_locally_delaunay());
}

}  // namespace
}  // namespace optipar::dmr
