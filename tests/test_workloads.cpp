#include "sim/workloads.hpp"

#include <gtest/gtest.h>

#include <set>

#include "graph/generators.hpp"
#include "sim/step_simulator.hpp"

namespace optipar {
namespace {

CsrGraph small_random(std::uint64_t seed = 1) {
  Rng rng(seed);
  return gen::gnm_random(40, 100, rng);
}

TEST(StationaryWorkload, SamplesDistinctPendingTasks) {
  StationaryWorkload w(small_random());
  Rng rng(2);
  EXPECT_EQ(w.pending(), 40u);
  EXPECT_FALSE(w.done());
  const auto active = w.sample_active(10, rng);
  EXPECT_EQ(active.size(), 10u);
  std::set<NodeId> distinct(active.begin(), active.end());
  EXPECT_EQ(distinct.size(), 10u);
}

TEST(StationaryWorkload, SampleClampsToPending) {
  StationaryWorkload w(small_random());
  Rng rng(3);
  EXPECT_EQ(w.sample_active(1000, rng).size(), 40u);
}

TEST(StationaryWorkload, RoundsDoNotConsume) {
  StationaryWorkload w(small_random());
  Rng rng(4);
  for (int i = 0; i < 10; ++i) (void)run_round(w, 20, rng);
  EXPECT_EQ(w.pending(), 40u);
  EXPECT_FALSE(w.done());
}

TEST(StationaryWorkload, ConflictsMirrorGraphEdges) {
  const auto g = gen::path(4);
  StationaryWorkload w(g);
  EXPECT_TRUE(w.conflicts(0, 1));
  EXPECT_FALSE(w.conflicts(0, 2));
  EXPECT_DOUBLE_EQ(w.average_degree(), g.average_degree());
}

TEST(RunRound, CommittedIsIndependentAbortedIsBlocked) {
  StationaryWorkload w(small_random(7));
  Rng rng(8);
  for (int trial = 0; trial < 20; ++trial) {
    const auto out = run_round(w, 15, rng);
    EXPECT_EQ(out.committed.size() + out.aborted.size(), 15u);
    for (std::size_t i = 0; i < out.committed.size(); ++i) {
      for (std::size_t j = i + 1; j < out.committed.size(); ++j) {
        EXPECT_FALSE(w.conflicts(out.committed[i], out.committed[j]));
      }
    }
    for (const NodeId a : out.aborted) {
      bool blocked = false;
      for (const NodeId c : out.committed) {
        if (w.conflicts(a, c)) blocked = true;
      }
      EXPECT_TRUE(blocked);
    }
  }
}

TEST(RunRound, StatsAreConsistent) {
  StationaryWorkload w(small_random(9));
  Rng rng(10);
  const auto out = run_round(w, 12, rng);
  const auto stats = out.stats();
  EXPECT_EQ(stats.launched, 12u);
  EXPECT_EQ(stats.committed + stats.aborted, stats.launched);
  EXPECT_NEAR(stats.conflict_ratio(),
              static_cast<double>(stats.aborted) / 12.0, 1e-12);
}

TEST(ConsumingWorkload, DrainsToEmpty) {
  ConsumingWorkload w(small_random(11));
  Rng rng(12);
  int rounds = 0;
  while (!w.done() && rounds < 1000) {
    (void)run_round(w, 10, rng);
    ++rounds;
  }
  EXPECT_TRUE(w.done());
  EXPECT_EQ(w.pending(), 0u);
  EXPECT_TRUE(w.graph().validate());
}

TEST(ConsumingWorkload, OnlyCommittedLeave) {
  ConsumingWorkload w(gen::complete(10));
  Rng rng(13);
  // On a clique exactly one task commits per round.
  const auto out = run_round(w, 5, rng);
  EXPECT_EQ(out.committed.size(), 1u);
  EXPECT_EQ(w.pending(), 9u);
}

TEST(RefiningWorkload, ParallelismRampsUp) {
  RefiningParams params;
  params.seed_nodes = 4;
  params.children = 3;
  params.total_budget = 2000;
  Rng rng(14);
  RefiningWorkload w(params, rng);
  const auto initial = w.pending();
  std::uint32_t peak = initial;
  for (int i = 0; i < 30 && !w.done(); ++i) {
    (void)run_round(w, w.pending(), rng);
    peak = std::max(peak, w.pending());
  }
  EXPECT_GT(peak, 5 * initial);  // the DMR-style explosion
  EXPECT_TRUE(w.graph().validate());
}

TEST(RefiningWorkload, BudgetBoundsSpawning) {
  RefiningParams params;
  params.seed_nodes = 4;
  params.children = 3;
  params.total_budget = 100;
  Rng rng(15);
  RefiningWorkload w(params, rng);
  int rounds = 0;
  while (!w.done() && rounds < 10000) {
    (void)run_round(w, std::max(1u, w.pending() / 2), rng);
    ++rounds;
  }
  EXPECT_TRUE(w.done());
  EXPECT_LE(w.spawned(), 100u + params.children);
}

TEST(RefiningWorkload, ValidatesParams) {
  RefiningParams params;
  params.seed_nodes = 0;
  Rng rng(16);
  EXPECT_THROW((void)RefiningWorkload(params, rng), std::invalid_argument);
}

TEST(PhaseShiftWorkload, AdvancesThroughStages) {
  Rng rng(17);
  std::vector<PhaseShiftWorkload::Stage> stages;
  stages.push_back({3, gen::complete(8)});
  stages.push_back({2, CsrGraph::from_edges(50, {})});
  PhaseShiftWorkload w(std::move(stages));

  EXPECT_EQ(w.current_stage(), 0u);
  EXPECT_EQ(w.pending(), 8u);
  EXPECT_GT(w.average_degree(), 6.9);
  for (int i = 0; i < 3; ++i) (void)run_round(w, 4, rng);
  EXPECT_EQ(w.current_stage(), 1u);
  EXPECT_EQ(w.pending(), 50u);
  EXPECT_DOUBLE_EQ(w.average_degree(), 0.0);
  for (int i = 0; i < 2; ++i) (void)run_round(w, 4, rng);
  EXPECT_TRUE(w.done());
  EXPECT_EQ(w.pending(), 0u);
}

TEST(PhaseShiftWorkload, ValidatesStages) {
  EXPECT_THROW((void)PhaseShiftWorkload({}), std::invalid_argument);
  std::vector<PhaseShiftWorkload::Stage> stages;
  stages.push_back({0, gen::complete(3)});
  EXPECT_THROW((void)PhaseShiftWorkload(std::move(stages)), std::invalid_argument);
}

}  // namespace
}  // namespace optipar
