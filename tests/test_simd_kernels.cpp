// Differential tests for the SIMD shim (support/simd.hpp): every vector
// ISA the host can run must match the scalar reference BIT-identically on
// random inputs, across sizes that cover zero, sub-width remainders, exact
// blocks, and block+remainder shapes for every shim width.
#include "support/simd.hpp"

#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "support/rng.hpp"
#include "support/stats.hpp"

namespace optipar {
namespace {

std::vector<std::size_t> test_sizes() {
  // Per-width coverage: for each shim width w include w-1, w, w+1, 4w,
  // 4w+3 — plus 0 and a few odd primes.
  std::vector<std::size_t> sizes{0, 1, 2, 3, 5, 13, 97};
  for (const simd::Isa isa : simd::available_isas()) {
    const std::size_t w = simd::lane_width_u32(isa);
    for (const std::size_t s : {w - 1, w, w + 1, 4 * w, 4 * w + 3}) {
      sizes.push_back(s);
    }
  }
  return sizes;
}

TEST(SimdShim, ReportsConsistentDispatch) {
  const auto isas = simd::available_isas();
  ASSERT_FALSE(isas.empty());
  EXPECT_EQ(isas.front(), simd::Isa::kScalar);
  for (const simd::Isa isa : isas) {
    EXPECT_GE(simd::lane_width_u32(isa), 1u);
    EXPECT_STRNE(simd::isa_name(isa), "unknown");
  }
  // The active ISA must be one the host reports as available.
  bool found = false;
  for (const simd::Isa isa : isas) found = found || isa == simd::active_isa();
  EXPECT_TRUE(found);
}

TEST(SimdDifferential, CountEqualU8MatchesScalar) {
  Rng rng(101);
  for (const std::size_t n : test_sizes()) {
    std::vector<std::uint8_t> data(n);
    // Values in {0,1,2}: the sweep outcome alphabet, with many repeats.
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.below(3));
    for (const std::uint8_t needle : {0, 1, 2, 7}) {
      const std::size_t expected = simd::count_equal_u8(
          data.data(), n, needle, simd::Isa::kScalar);
      for (const simd::Isa isa : simd::available_isas()) {
        EXPECT_EQ(simd::count_equal_u8(data.data(), n, needle, isa),
                  expected)
            << simd::isa_name(isa) << " n=" << n
            << " needle=" << unsigned(needle);
      }
    }
  }
}

TEST(SimdDifferential, AnyEqualGatherU32MatchesScalar) {
  Rng rng(202);
  constexpr std::size_t kTable = 257;
  std::vector<std::uint32_t> table(kTable);
  for (auto& v : table) v = rng.below(4);
  for (const std::size_t n : test_sizes()) {
    std::vector<std::uint32_t> idx(n);
    for (auto& i : idx) i = rng.below(kTable);
    for (const std::uint32_t match : {0u, 1u, 3u, 9u}) {
      const bool expected = simd::any_equal_gather_u32(
          table.data(), idx.data(), n, match, simd::Isa::kScalar);
      for (const simd::Isa isa : simd::available_isas()) {
        EXPECT_EQ(simd::any_equal_gather_u32(table.data(), idx.data(), n,
                                             match, isa),
                  expected)
            << simd::isa_name(isa) << " n=" << n << " match=" << match;
      }
    }
  }
}

TEST(SimdDifferential, AnyEqualGatherFindsMatchOnlyInPrefix) {
  // A match planted at every single position must be found (exercises
  // every lane of every block, including masked tails).
  constexpr std::size_t kTable = 64;
  std::vector<std::uint32_t> table(kTable, 0);
  table[kTable - 1] = 42;
  for (const std::size_t n : test_sizes()) {
    if (n == 0) continue;
    std::vector<std::uint32_t> idx(n, 0);  // all point at a non-match
    for (std::size_t hit = 0; hit < n; ++hit) {
      idx[hit] = kTable - 1;
      for (const simd::Isa isa : simd::available_isas()) {
        EXPECT_TRUE(simd::any_equal_gather_u32(table.data(), idx.data(), n,
                                               42, isa))
            << simd::isa_name(isa) << " n=" << n << " hit=" << hit;
      }
      idx[hit] = 0;
    }
    for (const simd::Isa isa : simd::available_isas()) {
      EXPECT_FALSE(
          simd::any_equal_gather_u32(table.data(), idx.data(), n, 42, isa));
    }
  }
}

TEST(SimdDifferential, ScatterU32MatchesScalarWithDuplicates) {
  Rng rng(303);
  constexpr std::size_t kTable = 131;
  for (const std::size_t n : test_sizes()) {
    std::vector<std::uint32_t> idx(n);
    for (auto& i : idx) i = rng.below(kTable);  // duplicates guaranteed
    std::vector<std::uint32_t> expected(kTable, 7);
    simd::scatter_u32(expected.data(), idx.data(), n, 99,
                      simd::Isa::kScalar);
    for (const simd::Isa isa : simd::available_isas()) {
      std::vector<std::uint32_t> table(kTable, 7);
      simd::scatter_u32(table.data(), idx.data(), n, 99, isa);
      EXPECT_EQ(table, expected) << simd::isa_name(isa) << " n=" << n;
    }
  }
}

TEST(SimdDifferential, WelfordStepBitIdenticalToStreamingStats) {
  Rng rng(404);
  constexpr std::size_t kSamples = 40;
  for (const std::size_t n : test_sizes()) {
    // Oracle: one StreamingStats per accumulator, element-wise add.
    std::vector<StreamingStats> oracle(n);
    std::vector<std::vector<std::uint32_t>> samples(
        kSamples, std::vector<std::uint32_t>(n));
    for (auto& row : samples) {
      for (auto& v : row) v = rng.below(1000);
    }
    for (const auto& row : samples) {
      for (std::size_t i = 0; i < n; ++i) {
        oracle[i].add(static_cast<double>(row[i]));
      }
    }
    for (const simd::Isa isa : simd::available_isas()) {
      std::vector<double> mean(n, 0.0), m2(n, 0.0), mn(n, 1e300),
          mx(n, -1e300);
      for (std::size_t s = 0; s < kSamples; ++s) {
        simd::welford_step_u32(mean.data(), m2.data(), mn.data(), mx.data(),
                               samples[s].data(), n,
                               static_cast<double>(s + 1), isa);
      }
      for (std::size_t i = 0; i < n; ++i) {
        const StreamingStats folded = StreamingStats::from_moments(
            kSamples, mean[i], m2[i], mn[i], mx[i]);
        // Bit-identity, not tolerance: memcmp the doubles.
        const double om = oracle[i].mean();
        const double fm = folded.mean();
        EXPECT_EQ(std::memcmp(&om, &fm, sizeof(double)), 0)
            << simd::isa_name(isa) << " mean[" << i << "] n=" << n;
        const double ov = oracle[i].variance();
        const double fv = folded.variance();
        EXPECT_EQ(std::memcmp(&ov, &fv, sizeof(double)), 0)
            << simd::isa_name(isa) << " variance[" << i << "] n=" << n;
        EXPECT_EQ(oracle[i].min(), folded.min());
        EXPECT_EQ(oracle[i].max(), folded.max());
        EXPECT_EQ(oracle[i].count(), folded.count());
      }
    }
  }
}

TEST(SimdDifferential, FromMomentsRoundTripsEmptyAccumulator) {
  const StreamingStats empty;
  const StreamingStats rebuilt =
      StreamingStats::from_moments(0, 0.0, 0.0, 1e300, -1e300);
  EXPECT_EQ(rebuilt.count(), empty.count());
  EXPECT_EQ(rebuilt.mean(), empty.mean());
  EXPECT_EQ(rebuilt.variance(), empty.variance());
}

}  // namespace
}  // namespace optipar
