#include "control/plant_sim.hpp"

#include <gtest/gtest.h>

#include "control/baselines.hpp"
#include "control/extra.hpp"
#include "control/hybrid.hpp"
#include "control/recurrence.hpp"
#include "graph/generators.hpp"

namespace optipar {
namespace {

ControllerParams base_params() {
  ControllerParams p;
  p.rho = 0.25;
  p.m_max = 4096;
  p.small_m_regime = false;
  return p;
}

TEST(Plants, LinearPlantShape) {
  const auto plant = linear_plant(0.001);
  EXPECT_DOUBLE_EQ(plant(1), 0.0);
  EXPECT_NEAR(plant(251), 0.25, 1e-12);
  EXPECT_DOUBLE_EQ(plant(2000), 1.0);  // clamped
}

TEST(Plants, WorstCasePlantMatchesTheory) {
  const auto plant = worst_case_plant(1700, 16);
  EXPECT_NEAR(plant(100), theory::conflict_ratio_bound_approx(1700, 16, 100),
              1e-12);
}

TEST(Plants, PlantFromCurveInterpolatesAndClamps) {
  Rng rng(1);
  const auto g = gen::complete(10);
  const auto curve = estimate_conflict_curve(g, 5, rng);
  const auto plant = plant_from_curve(curve);
  EXPECT_DOUBLE_EQ(plant(4), 0.75);   // exact on K_n
  EXPECT_DOUBLE_EQ(plant(99), 0.9);   // clamps to m = 10
}

TEST(PlantMu, FindsOperatingPoint) {
  const auto plant = linear_plant(0.001);  // r(m) = (m-1)/1000
  EXPECT_EQ(plant_mu(plant, 0.25, 4096), 251u);
}

TEST(PlantTrace, SettlingStepAndPeak) {
  PlantTrace t;
  t.m = {2, 50, 400, 260, 250, 251, 249};
  EXPECT_EQ(t.peak_m(), 400u);
  EXPECT_EQ(t.settling_step(250, 0.10), 3u);
  // A trace that leaves the band at the end never settles.
  t.m.push_back(1000);
  EXPECT_EQ(t.settling_step(250, 0.10), t.m.size());
}

TEST(PlantSim, HybridSettlesFastOnLinearPlant) {
  // Noise-free version of Fig. 3: the hybrid should need only a handful
  // of control updates (windows of T = 4 rounds).
  auto p = base_params();
  HybridController c(p);
  const auto plant = linear_plant(0.001);
  const auto trace = simulate_on_plant(c, plant, 200);
  const auto mu = plant_mu(plant, p.rho, p.m_max);
  EXPECT_LT(trace.settling_step(mu, 0.15), 30u);
}

TEST(PlantSim, HybridBeatsRecurrenceADeterministically) {
  const auto plant = linear_plant(0.0005);
  auto p = base_params();
  HybridController hybrid(p);
  RecurrenceAController a_only(p);
  const auto mu = plant_mu(plant, p.rho, p.m_max);
  const auto t_h = simulate_on_plant(hybrid, plant, 600);
  const auto t_a = simulate_on_plant(a_only, plant, 600);
  EXPECT_LT(t_h.settling_step(mu, 0.15) * 4, t_a.settling_step(mu, 0.15));
}

TEST(PlantSim, TinyRMinOvershootsOnConvexPlant) {
  // On the worst-case (concave-up only near 0... effectively sublinear)
  // plant, Recurrence B with a tiny r_min overshoots far past mu on its
  // first jump; the paper's 3% clamp bounds the jump.
  const auto plant = worst_case_plant(2006, 16);
  const auto mu = plant_mu(plant, 0.25, 4096);
  auto tiny = base_params();
  tiny.r_min = 1e-6;
  HybridController c_tiny(tiny);
  auto paper = base_params();
  HybridController c_paper(paper);
  const auto t_tiny = simulate_on_plant(c_tiny, plant, 100);
  const auto t_paper = simulate_on_plant(c_paper, plant, 100);
  EXPECT_GT(t_tiny.peak_m(), 4 * mu);          // unclamped: wild first jump
  EXPECT_LT(t_paper.peak_m(), t_tiny.peak_m());  // clamp tames it
}

TEST(PlantSim, SteadyStateSitsInDeadBand) {
  const auto plant = linear_plant(0.001);
  auto p = base_params();
  HybridController c(p);
  const auto trace = simulate_on_plant(c, plant, 400);
  // After settling, the observed ratio stays within the dead band of rho:
  // |1 - r/rho| <= alpha1 (+ quantization from integer m).
  for (std::size_t i = 200; i < trace.r.size(); ++i) {
    EXPECT_NEAR(trace.r[i], p.rho, p.rho * (p.alpha1 + 0.05)) << "i=" << i;
  }
}

TEST(PlantSim, FixedControllerTracksNothing) {
  FixedController c(10);
  const auto plant = linear_plant(0.01);
  const auto trace = simulate_on_plant(c, plant, 50);
  for (const auto m : trace.m) EXPECT_EQ(m, 10u);
}

TEST(PlantSim, PidSettlesOnWorstCasePlant) {
  const auto plant = worst_case_plant(2006, 16);
  auto p = base_params();
  PidController c(p);
  const auto mu = plant_mu(plant, p.rho, p.m_max);
  const auto trace = simulate_on_plant(c, plant, 600);
  EXPECT_LT(trace.settling_step(mu, 0.25), 400u);
}

}  // namespace
}  // namespace optipar
