#include "rt/parallel_loop.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "graph/algos.hpp"
#include "graph/generators.hpp"

namespace optipar {
namespace {

TEST(ForEachAdaptive, RunsEveryTaskExactlyOnceWhenIndependent) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(64);
  std::vector<TaskId> initial;
  for (TaskId t = 0; t < 64; ++t) initial.push_back(t);
  ForEachOptions options;
  options.items = 64;
  const auto trace = for_each_adaptive(
      pool, initial,
      [&](TaskId t, IterationContext& ctx) {
        ctx.acquire(static_cast<std::uint32_t>(t));
        hits[t].fetch_add(1);
      },
      options);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(trace.total_committed(), 64u);
}

TEST(ForEachAdaptive, PushedWorkIsExecuted) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  const TaskId initial[] = {0};
  ForEachOptions options;
  options.items = 1;
  (void)for_each_adaptive(
      pool, initial,
      [&](TaskId t, IterationContext& ctx) {
        ctx.acquire(0);
        total.fetch_add(1);
        if (t < 5) ctx.push(t + 1);
      },
      options);
  EXPECT_EQ(total.load(), 6);
}

TEST(ForEachAdaptive, SolvesMisEndToEnd) {
  // The whole MIS app re-expressed through the one-call API.
  Rng rng(1);
  const auto g = gen::gnm_random(300, 1200, rng);
  std::vector<std::uint8_t> state(300, 0);  // 0 undecided, 1 in, 2 out
  std::vector<TaskId> initial;
  for (TaskId v = 0; v < 300; ++v) initial.push_back(v);

  ThreadPool pool(4);
  ForEachOptions options;
  options.items = 300;
  options.controller.rho = 0.25;
  const auto trace = for_each_adaptive(
      pool, initial,
      [&](TaskId task, IterationContext& ctx) {
        const auto v = static_cast<NodeId>(task);
        ctx.acquire(v);
        if (state[v] != 0) return;
        for (const NodeId w : g.neighbors(v)) ctx.acquire(w);
        bool blocked = false;
        for (const NodeId w : g.neighbors(v)) blocked |= (state[w] == 1);
        state[v] = blocked ? 2 : 1;
        ctx.on_abort([&state, v] { state[v] = 0; });
        if (!blocked) {
          for (const NodeId w : g.neighbors(v)) {
            if (state[w] == 0) {
              state[w] = 2;
              ctx.on_abort([&state, w] { state[w] = 0; });
            }
          }
        }
      },
      options);

  std::vector<NodeId> in_set;
  for (NodeId v = 0; v < 300; ++v) {
    if (state[v] == 1) in_set.push_back(v);
  }
  EXPECT_TRUE(is_maximal_independent_set(g, in_set));
  EXPECT_GT(trace.steps.size(), 0u);
}

TEST(ForEachAdaptive, PriorityWinsArbitrationSolvesColoringProperly) {
  Rng rng(2);
  const auto g = gen::gnm_random(200, 900, rng);
  std::vector<std::uint32_t> color(200, UINT32_MAX);
  std::vector<TaskId> initial;
  for (TaskId v = 0; v < 200; ++v) initial.push_back(v);

  ThreadPool pool(4);
  ForEachOptions options;
  options.items = 200;
  options.arbitration = ArbitrationPolicy::kPriorityWins;
  (void)for_each_adaptive(
      pool, initial,
      [&](TaskId task, IterationContext& ctx) {
        const auto v = static_cast<NodeId>(task);
        ctx.acquire(v);
        if (color[v] != UINT32_MAX) return;
        for (const NodeId w : g.neighbors(v)) ctx.acquire(w);
        std::vector<bool> taken(g.degree(v) + 1, false);
        for (const NodeId w : g.neighbors(v)) {
          if (color[w] != UINT32_MAX && color[w] < taken.size()) {
            taken[color[w]] = true;
          }
        }
        std::uint32_t c = 0;
        while (c < taken.size() && taken[c]) ++c;
        color[v] = c;
        ctx.on_abort([&color, v] { color[v] = UINT32_MAX; });
      },
      options);

  for (NodeId v = 0; v < 200; ++v) {
    ASSERT_NE(color[v], UINT32_MAX);
    for (const NodeId w : g.neighbors(v)) EXPECT_NE(color[v], color[w]);
  }
}

TEST(ForEachAdaptive, SoftPriorityPolicyOrdersExecution) {
  ThreadPool pool(1);
  std::vector<TaskId> order;
  std::vector<TaskId> initial{30, 10, 20};
  ForEachOptions options;
  options.items = 1;
  options.policy = WorklistPolicy::kPriority;
  options.priority = [](TaskId t) { return t; };
  (void)for_each_adaptive(
      pool, initial,
      [&order](TaskId t, IterationContext&) { order.push_back(t); },
      options);
  EXPECT_EQ(order, (std::vector<TaskId>{10, 20, 30}));
}

TEST(ForEachAdaptive, BeforeRoundHookAndMaxRounds) {
  ThreadPool pool(1);
  int hooks = 0;
  const TaskId initial[] = {0};
  ForEachOptions options;
  options.items = 1;
  options.max_rounds = 3;
  options.before_round = [&](SpeculativeExecutor&) { ++hooks; };
  (void)for_each_adaptive(
      pool, initial,
      [](TaskId, IterationContext&) -> void { throw AbortIteration{}; },
      options);
  EXPECT_EQ(hooks, 3);
}

}  // namespace
}  // namespace optipar
