#include "apps/dmr/refine.hpp"

#include <gtest/gtest.h>

#include "control/hybrid.hpp"
#include "control/baselines.hpp"
#include "support/rng.hpp"

namespace optipar::dmr {
namespace {

std::vector<Point2> random_points(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Point2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform() * 100.0, rng.uniform() * 100.0});
  }
  return pts;
}

RefineQuality quality() {
  RefineQuality q;
  q.min_angle_deg = 25.0;
  // Size floor chosen so test meshes stay at a few hundred triangles
  // (refinement drives toward uniform ~min_edge density over the domain).
  q.min_edge = 4.0;
  // All tests generate points in [0, 100)²; bound the refinement there.
  q.domain_lo_x = q.domain_lo_y = 0.0;
  q.domain_hi_x = q.domain_hi_y = 100.0;
  return q;
}

TEST(IsBad, SuperTrianglesAreNeverBad) {
  Mesh m;
  build_delaunay(m, random_points(5, 1));
  const auto q = quality();
  for (const TriId t : m.alive_triangles()) {
    const auto& tri = m.tri(t);
    const bool touches_super = tri.v[0] < kNumSuperVertices ||
                               tri.v[1] < kNumSuperVertices ||
                               tri.v[2] < kNumSuperVertices;
    if (touches_super) {
      EXPECT_FALSE(is_bad(m, t, q));
    }
  }
}

TEST(IsBad, SizeFloorSuppressesTinyTriangles) {
  Mesh m;
  build_delaunay(m, random_points(30, 2));
  RefineQuality strict;
  strict.min_angle_deg = 60.0;  // everything is "bad" by angle...
  strict.min_edge = 1e9;        // ...but the floor vetoes all of it
  EXPECT_TRUE(bad_triangles(m, strict).empty());
}

TEST(RefineSequential, EliminatesAllBadTriangles) {
  Mesh m;
  build_delaunay(m, random_points(60, 3));
  const auto q = quality();
  const auto initially_bad = bad_triangles(m, q).size();
  ASSERT_GT(initially_bad, 0u);  // random clouds always have slivers
  const auto insertions = refine_sequential(m, q);
  EXPECT_GT(insertions, 0u);
  EXPECT_TRUE(bad_triangles(m, q).empty());
  EXPECT_TRUE(m.validate());
  EXPECT_TRUE(m.is_locally_delaunay());
}

TEST(RefineSequential, RespectsInsertionCap) {
  Mesh m;
  build_delaunay(m, random_points(60, 4));
  const auto insertions = refine_sequential(m, quality(), 5);
  EXPECT_LE(insertions, 5u);
  EXPECT_TRUE(m.validate());
}

TEST(RefineSequential, ImprovesMinimumAngle) {
  Mesh m;
  build_delaunay(m, random_points(80, 5));
  const auto q = quality();
  refine_sequential(m, q);
  // All refinable triangles now meet the angle target.
  const double threshold = q.min_angle_deg * 3.14159265 / 180.0;
  for (const TriId t : m.alive_triangles()) {
    const auto& tri = m.tri(t);
    const bool interior = tri.v[0] >= kNumSuperVertices &&
                          tri.v[1] >= kNumSuperVertices &&
                          tri.v[2] >= kNumSuperVertices;
    if (interior && m.shortest_edge_of(t) >= q.min_edge) {
      EXPECT_GE(m.min_angle_of(t), threshold * 0.999);
    }
  }
}

TEST(RefineOne, NoOpOnGoodTriangle) {
  Mesh m;
  build_delaunay(m, random_points(40, 6));
  const auto q = quality();
  TriId good = kNoNeighbor;
  for (const TriId t : m.alive_triangles()) {
    if (!is_bad(m, t, q)) {
      good = t;
      break;
    }
  }
  ASSERT_NE(good, kNoNeighbor);
  const auto slots_before = m.num_triangle_slots();
  EXPECT_TRUE(refine_one(m, good, q).empty());
  EXPECT_EQ(m.num_triangle_slots(), slots_before);
}

class RefineAdaptiveTest : public ::testing::TestWithParam<double> {};

TEST_P(RefineAdaptiveTest, SpeculativeRefinementConvergesLikeSequential) {
  const double rho = GetParam();
  Mesh m;
  build_delaunay(m, random_points(80, 7));
  const auto q = quality();

  ThreadPool pool(4);
  ControllerParams p;
  p.rho = rho;
  HybridController controller(p);
  const auto trace = refine_adaptive(m, q, controller, pool, /*seed=*/99);

  EXPECT_TRUE(bad_triangles(m, q).empty());
  EXPECT_TRUE(m.validate());
  EXPECT_TRUE(m.is_locally_delaunay());
  EXPECT_GT(trace.total_committed(), 0u);
  // Every launched task either committed or aborted.
  for (const auto& s : trace.steps) {
    EXPECT_EQ(s.launched, s.committed + s.aborted);
  }
}

INSTANTIATE_TEST_SUITE_P(Rho, RefineAdaptiveTest,
                         ::testing::Values(0.15, 0.25, 0.35));

TEST(RefineAdaptive, FixedAllocationAlsoCompletes) {
  Mesh m;
  build_delaunay(m, random_points(60, 8));
  const auto q = quality();
  ThreadPool pool(4);
  FixedController controller(8);
  const auto trace = refine_adaptive(m, q, controller, pool, 123);
  EXPECT_TRUE(bad_triangles(m, q).empty());
  EXPECT_TRUE(m.validate());
  (void)trace;
}

TEST(RefineAdaptive, SameMeshStatisticsAsSequentialReference) {
  // Speculative and sequential refinement take different insertion orders,
  // so meshes differ — but both must (a) clear all bad triangles and
  // (b) end up with comparable triangle counts (same workload scale).
  const auto pts = random_points(70, 9);
  const auto q = quality();

  Mesh seq;
  build_delaunay(seq, pts);
  refine_sequential(seq, q);

  Mesh spec;
  build_delaunay(spec, pts);
  ThreadPool pool(4);
  ControllerParams p;
  HybridController controller(p);
  (void)refine_adaptive(spec, q, controller, pool, 321);

  EXPECT_TRUE(bad_triangles(seq, q).empty());
  EXPECT_TRUE(bad_triangles(spec, q).empty());
  const double seq_count = static_cast<double>(seq.num_alive_triangles());
  const double spec_count = static_cast<double>(spec.num_alive_triangles());
  EXPECT_LT(std::abs(seq_count - spec_count) / seq_count, 0.35);
}

}  // namespace
}  // namespace optipar::dmr
