// Pipelined-executor determinism (DESIGN.md §12). Three contracts:
//  * the single-lane fast path (plain cursors, no barrier, relaxed lock
//    ops) replays the generic barriered path byte-for-byte — same round
//    stats, same shared state, same snapshot bytes (rng streams, shard
//    contents, totals);
//  * forcing max_lanes = 1 makes an oversubscribed pool fully
//    deterministic (the lane auto-cap is the paper's processor-allocation
//    argument applied to the runtime itself);
//  * the overlapped multi-lane pipeline keeps the exactly-once commit
//    oracle and reports coherent pipeline statistics.
#include <gtest/gtest.h>

#include <cstddef>
#include <numeric>
#include <vector>

#include "rt/spec_executor.hpp"
#include "support/snapshot/snapshot.hpp"
#include "support/thread_pool.hpp"

namespace optipar {
namespace {

constexpr std::uint32_t kCells = 32;
constexpr std::uint32_t kTasks = 160;

struct RoundRecord {
  std::uint32_t launched = 0;
  std::uint32_t committed = 0;
  bool operator==(const RoundRecord&) const = default;
};

struct GoldenRun {
  std::vector<RoundRecord> rounds;
  std::vector<std::int64_t> cells;
  std::vector<std::byte> state;  // full executor snapshot at quiescence
};

/// Each task touches two cells (one shared with a neighbor), so rounds
/// mix commits and aborts; aborted tasks requeue until they commit.
GoldenRun run_workload(std::size_t pool_threads,
                       const PipelineConfig& pipeline) {
  GoldenRun out;
  out.cells.assign(kCells, 0);
  ThreadPool pool(pool_threads);
  SpeculativeExecutor ex(
      pool, kCells,
      [&out](TaskId t, IterationContext& ctx) {
        const auto a = static_cast<std::uint32_t>(t % kCells);
        const auto b = static_cast<std::uint32_t>((t * 7 + 3) % kCells);
        ctx.acquire(a);
        out.cells[a] += 1;
        ctx.on_abort([&out, a] { out.cells[a] -= 1; });
        ctx.acquire(b);
        out.cells[b] -= 2;
        ctx.on_abort([&out, b] { out.cells[b] += 2; });
      },
      1234);
  ex.set_pipeline(pipeline);
  std::vector<TaskId> tasks(kTasks);
  std::iota(tasks.begin(), tasks.end(), TaskId{0});
  ex.push_initial(tasks);
  int guard = 0;
  while (!ex.done() && guard++ < 10000) {
    const RoundStats s = ex.run_round(24);
    out.rounds.push_back({s.launched, s.committed});
  }
  EXPECT_TRUE(ex.done());
  EXPECT_EQ(ex.totals().committed, kTasks);
  EXPECT_TRUE(ex.locks().all_free());
  snapshot::Writer w;
  ex.save_state(w);
  out.state = w.bytes();
  return out;
}

std::vector<std::int64_t> oracle_cells() {
  std::vector<std::int64_t> cells(kCells, 0);
  for (TaskId t = 0; t < kTasks; ++t) {
    cells[t % kCells] += 1;
    cells[(t * 7 + 3) % kCells] -= 2;
  }
  return cells;
}

TEST(PipelineGolden, FastPathReplaysGenericSingleLaneByteIdentically) {
  const GoldenRun fast = run_workload(
      1, {.max_lanes = 1, .single_lane_fast_path = true});
  const GoldenRun generic = run_workload(
      1, {.max_lanes = 1, .single_lane_fast_path = false});
  EXPECT_EQ(fast.rounds, generic.rounds);
  EXPECT_EQ(fast.cells, generic.cells);
  EXPECT_EQ(fast.state, generic.state);
  EXPECT_EQ(fast.cells, oracle_cells());
}

TEST(PipelineGolden, LaneCapPinsOversubscribedPoolToTheGoldenTrace) {
  // Same pool shape (shard count is part of the snapshot header), three
  // schedules that must coincide once lanes are capped at one.
  const GoldenRun fast = run_workload(
      4, {.max_lanes = 1, .single_lane_fast_path = true});
  const GoldenRun generic = run_workload(
      4, {.max_lanes = 1, .single_lane_fast_path = false});
  const GoldenRun replay = run_workload(
      4, {.max_lanes = 1, .single_lane_fast_path = true});
  EXPECT_EQ(fast.rounds, generic.rounds);
  EXPECT_EQ(fast.state, generic.state);
  EXPECT_EQ(fast.rounds, replay.rounds);
  EXPECT_EQ(fast.state, replay.state);
  EXPECT_EQ(fast.cells, oracle_cells());
}

TEST(PipelineGolden, OverlappedPipelineKeepsExactlyOnceCommits) {
  const GoldenRun piped = run_workload(
      2, {.max_lanes = 2, .overlapped_draw = true});
  EXPECT_EQ(piped.cells, oracle_cells());
}

TEST(PipelineGolden, PipelineStatsAreCoherent) {
  ThreadPool pool(2);
  std::vector<std::int64_t> cells(kCells, 0);
  SpeculativeExecutor ex(
      pool, kCells,
      [&cells](TaskId t, IterationContext& ctx) {
        const auto a = static_cast<std::uint32_t>(t % kCells);
        ctx.acquire(a);
        cells[a] += 1;
        ctx.on_abort([&cells, a] { cells[a] -= 1; });
      },
      7);
  ex.set_pipeline({.max_lanes = 2, .overlapped_draw = true});
  std::vector<TaskId> tasks(kTasks);
  std::iota(tasks.begin(), tasks.end(), TaskId{0});
  ex.push_initial(tasks);
  int guard = 0;
  while (!ex.done() && guard++ < 10000) (void)ex.run_round(24);
  ASSERT_TRUE(ex.done());
  const PipelineStats& ps = ex.pipeline_stats();
  EXPECT_GT(ps.overlapped_rounds, 0u);
  EXPECT_GT(ps.prefetched_tasks, 0u);
  EXPECT_LE(ps.precheck_flagged, ps.prefetched_tasks);
  EXPECT_GE(ps.occupancy(), 0.0);
  EXPECT_LE(ps.occupancy(), 1.0);
}

TEST(PipelineGolden, CustomPrecheckOrdersTheOverlappedDraw) {
  ThreadPool pool(2);
  SpeculativeExecutor ex(
      pool, kCells,
      [](TaskId t, IterationContext& ctx) {
        ctx.acquire(static_cast<std::uint32_t>(t % kCells));
      },
      11);
  ex.set_pipeline({.max_lanes = 2, .overlapped_draw = true});
  // Flag everything: a pre-check verdict is an ordering hint, never a
  // gate, so the run must still retire every task.
  ex.set_precheck_function(
      [](TaskId, const LockManager&) { return false; });
  std::vector<TaskId> tasks(kTasks);
  std::iota(tasks.begin(), tasks.end(), TaskId{0});
  ex.push_initial(tasks);
  int guard = 0;
  while (!ex.done() && guard++ < 10000) (void)ex.run_round(24);
  ASSERT_TRUE(ex.done());
  EXPECT_EQ(ex.totals().committed, kTasks);
  const PipelineStats& ps = ex.pipeline_stats();
  EXPECT_EQ(ps.precheck_flagged, ps.prefetched_tasks);
  EXPECT_GT(ps.prefetched_tasks, 0u);
}

}  // namespace
}  // namespace optipar
