#include "support/ascii_plot.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace optipar {
namespace {

TEST(AsciiPlot, EmptyPlotRendersNothing) {
  AsciiPlot plot(20, 5);
  std::ostringstream os;
  plot.render(os);
  EXPECT_TRUE(os.str().empty());
}

TEST(AsciiPlot, SingleSeriesContainsGlyphAndLegend) {
  AsciiPlot plot(30, 8);
  plot.add_series("line", '*', {0, 1, 2, 3}, {0, 1, 2, 3});
  std::ostringstream os;
  plot.render(os);
  const std::string out = os.str();
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("* = line"), std::string::npos);
  // Frame: two horizontal borders.
  EXPECT_GE(std::count(out.begin(), out.end(), '+'), 4);
}

TEST(AsciiPlot, ExtremePointsLandOnCorners) {
  AsciiPlot plot(10, 4);
  plot.add_series("s", 'x', {0, 1}, {0, 1});
  std::ostringstream os;
  plot.render(os);
  const std::string out = os.str();
  // First grid row (top) must contain the max point, last the min.
  std::istringstream lines(out);
  std::string line;
  std::getline(lines, line);  // top border
  std::getline(lines, line);  // top row
  EXPECT_NE(line.find('x'), std::string::npos);
}

TEST(AsciiPlot, ConstantSeriesDoesNotDivideByZero) {
  AsciiPlot plot(10, 4);
  plot.add_series("flat", '-', {0, 1, 2}, {5, 5, 5});
  std::ostringstream os;
  plot.render(os);
  EXPECT_FALSE(os.str().empty());
}

TEST(AsciiPlot, MultipleSeriesAllListed) {
  AsciiPlot plot(16, 6);
  plot.add_series("a", 'a', {0, 1}, {0, 1});
  plot.add_series("b", 'b', {0, 1}, {1, 0});
  std::ostringstream os;
  plot.render(os);
  EXPECT_NE(os.str().find("a = a"), std::string::npos);
  EXPECT_NE(os.str().find("b = b"), std::string::npos);
}

}  // namespace
}  // namespace optipar
