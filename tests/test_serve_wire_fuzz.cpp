// Deterministic hostile-input corpus for the serve wire protocol
// (DESIGN.md §13), mirroring the graph reader's fuzz suite: every corrupt
// frame must be refused with the RIGHT WireError kind, and systematic
// mutation/truncation sweeps over valid frames must never produce anything
// but a clean decode or a typed error — no crash, no hang, no runaway
// allocation. Everything runs on the socket-free frame_bytes/unframe_bytes
// layer, so the exact bytes a hostile peer could send are exercised without
// a daemon in the loop.
#include "serve/wire.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace optipar::serve {
namespace {

using Kind = WireError::Kind;

std::vector<std::byte> bytes_of(std::initializer_list<unsigned> values) {
  std::vector<std::byte> out;
  out.reserve(values.size());
  for (const unsigned v : values) {
    out.push_back(static_cast<std::byte>(v & 0xFFu));
  }
  return out;
}

/// A small, valid framed request to mutate.
std::vector<std::byte> valid_frame() {
  RunRequest req;
  req.graph = "g1";
  req.controller = "hybrid";
  req.seed = 7;
  return frame_bytes(req.encode());
}

TEST(ServeWireFuzz, CorpusEntriesFailWithTypedErrors) {
  struct Entry {
    const char* name;
    std::vector<std::byte> input;
    Kind kind;
  };
  const auto valid = valid_frame();

  std::vector<Entry> corpus;
  corpus.push_back({"empty input", {}, Kind::kTruncated});
  corpus.push_back({"half a magic", bytes_of({0x57, 0x52}), Kind::kTruncated});
  corpus.push_back({"wrong magic",
                    bytes_of({0xDE, 0xAD, 0xBE, 0xEF, 4, 0, 0, 0, 0, 0, 0, 0,
                              1, 2, 3, 4}),
                    Kind::kBadMagic});
  // Snapshot-file magic in a wire frame: right family, wrong protocol.
  corpus.push_back({"snapshot magic",
                    bytes_of({0x4E, 0x53, 0x50, 0x4F, 0, 0, 0, 0, 0, 0, 0, 0}),
                    Kind::kBadMagic});
  {
    // Length prefix claiming 4 GiB: must be refused BEFORE any allocation.
    auto hostile = bytes_of({0x57, 0x52, 0x50, 0x4F,  // "OPRW" little-endian
                             0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0});
    corpus.push_back({"hostile length prefix", hostile, Kind::kTooLarge});
  }
  {
    auto truncated = valid;
    truncated.resize(truncated.size() - 1);
    corpus.push_back({"clipped payload", truncated, Kind::kTruncated});
  }
  {
    auto truncated = valid;
    truncated.resize(kFrameHeaderBytes - 2);
    corpus.push_back({"clipped header", truncated, Kind::kTruncated});
  }
  {
    auto corrupt = valid;
    corrupt.back() ^= std::byte{0x01};
    corpus.push_back({"flipped payload bit", corrupt, Kind::kBadChecksum});
  }
  {
    auto corrupt = valid;
    corrupt[8] ^= std::byte{0x40};  // CRC field itself
    corpus.push_back({"flipped crc bit", corrupt, Kind::kBadChecksum});
  }
  {
    auto trailing = valid;
    trailing.push_back(std::byte{0x00});
    corpus.push_back({"trailing garbage", trailing, Kind::kMalformed});
  }

  for (const auto& entry : corpus) {
    try {
      (void)unframe_bytes(entry.input);
      FAIL() << entry.name << ": decoded instead of throwing";
    } catch (const WireError& e) {
      EXPECT_EQ(e.kind(), entry.kind) << entry.name << ": " << e.what();
    } catch (const std::exception& e) {
      FAIL() << entry.name << ": untyped exception: " << e.what();
    }
  }
}

TEST(ServeWireFuzz, PayloadCorpusFailsWithTypedErrors) {
  // CRC-valid frames whose PAYLOADS are hostile: the decode layer must
  // answer with kMalformed/kBadType, never anything untyped.
  struct Entry {
    const char* name;
    std::vector<std::byte> payload;
    Kind kind;
  };
  std::vector<Entry> corpus;
  corpus.push_back({"empty payload", {}, Kind::kMalformed});
  corpus.push_back({"unknown tag", bytes_of({0xEE}), Kind::kBadType});
  corpus.push_back({"tag zero", bytes_of({0x00}), Kind::kBadType});
  {
    // kRun tag with nothing behind it.
    corpus.push_back({"run with no fields", bytes_of({3}), Kind::kMalformed});
  }
  {
    // A valid RunRequest clipped mid-string.
    RunRequest req;
    req.graph = "graph-name";
    auto payload = req.encode();
    payload.resize(payload.size() / 2);
    corpus.push_back({"run clipped", payload, Kind::kMalformed});
  }
  {
    // Valid request with trailing garbage after a clean decode.
    auto payload = encode_empty(MsgType::kHealth);
    payload.push_back(std::byte{0x7F});
    corpus.push_back({"health with trailer", payload, Kind::kMalformed});
  }
  {
    // A string length pointing past the end of the payload: the bounds-
    // checked reader must refuse without touching out-of-range memory.
    auto payload = bytes_of({2});  // kUploadGraph
    const auto huge = bytes_of({0xFF, 0xFF, 0xFF, 0x7F});
    payload.insert(payload.end(), huge.begin(), huge.end());
    corpus.push_back({"upload huge name length", payload, Kind::kMalformed});
  }

  for (const auto& entry : corpus) {
    const auto framed = frame_bytes(entry.payload);
    const auto recovered = unframe_bytes(framed);  // framing itself is fine
    ASSERT_EQ(recovered, entry.payload) << entry.name;
    try {
      const MsgType type = peek_type(recovered);
      switch (type) {
        case MsgType::kUploadGraph:
          (void)UploadGraphRequest::decode(recovered);
          break;
        case MsgType::kRun:
          (void)RunRequest::decode(recovered);
          break;
        case MsgType::kHealth:
          // Zero-field request: any trailing byte must already have been
          // refused by a full decoder; emulate the server's strictness.
          if (recovered.size() != 1) {
            throw WireError(Kind::kMalformed, "health with payload");
          }
          break;
        default:
          (void)RunRequest::decode(recovered);
          break;
      }
      FAIL() << entry.name << ": decoded instead of throwing";
    } catch (const WireError& e) {
      EXPECT_EQ(e.kind(), entry.kind) << entry.name << ": " << e.what();
    } catch (const std::exception& e) {
      FAIL() << entry.name << ": untyped exception: " << e.what();
    }
  }
}

TEST(ServeWireFuzz, MutationSweepNeverEscapesTheTaxonomy) {
  // Flip every byte of a valid frame through a set of hostile values. Each
  // mutant must either decode back to a valid payload (only possible when
  // the mutation missed every load-bearing byte — with a CRC in the frame,
  // effectively never) or raise a typed WireError.
  const auto original = valid_frame();
  const unsigned char mutations[] = {0x00, 0xFF, 0x4F, 0x01, 0x80};
  std::size_t decoded = 0;
  std::size_t refused = 0;
  for (std::size_t pos = 0; pos < original.size(); ++pos) {
    for (const unsigned char mut : mutations) {
      auto mutant = original;
      if (mutant[pos] == std::byte{mut}) continue;
      mutant[pos] = std::byte{mut};
      try {
        const auto payload = unframe_bytes(mutant);
        (void)RunRequest::decode(payload);
        ++decoded;
      } catch (const WireError&) {
        ++refused;
      } catch (const std::exception& e) {
        FAIL() << "pos " << pos << " mut " << static_cast<int>(mut)
               << ": untyped exception: " << e.what();
      }
    }
  }
  EXPECT_GT(refused, 0u);
  // The CRC makes a silently-accepted mutation of the payload impossible;
  // only header-adjacent no-ops could ever decode.
  EXPECT_EQ(decoded, 0u);
}

TEST(ServeWireFuzz, TruncationSweepNeverEscapesTheTaxonomy) {
  const auto original = valid_frame();
  for (std::size_t len = 0; len < original.size(); ++len) {
    const std::span<const std::byte> cut(original.data(), len);
    try {
      (void)unframe_bytes(cut);
      FAIL() << "truncation at " << len << " decoded";
    } catch (const WireError& e) {
      EXPECT_TRUE(e.kind() == Kind::kTruncated ||
                  e.kind() == Kind::kBadMagic || e.kind() == Kind::kTooLarge)
          << "truncation at " << len << ": " << e.what();
    } catch (const std::exception& e) {
      FAIL() << "truncation at " << len << ": untyped exception: "
             << e.what();
    }
  }
}

TEST(ServeWireFuzz, MessageRoundTrips) {
  // The constructive counterpart: every message type round-trips through
  // encode → frame → unframe → decode unchanged.
  {
    UploadGraphRequest a;
    a.name = "mesh-4k";
    a.text = "p 2 1\n0 1\n";
    const auto b = UploadGraphRequest::decode(unframe_bytes(
        frame_bytes(a.encode())));
    EXPECT_EQ(b.name, a.name);
    EXPECT_EQ(b.text, a.text);
  }
  {
    RunRequest a;
    a.graph = "mesh-4k";
    a.controller = "recurrence-B";
    a.rho = 0.3;
    a.seed = 99;
    a.steps = 1234;
    a.m0 = 8;
    a.m_max = 256;
    a.timeout_ms = 1500;
    a.checkpoint_every = 4;
    const auto b = RunRequest::decode(a.encode());
    EXPECT_EQ(b.graph, a.graph);
    EXPECT_EQ(b.controller, a.controller);
    EXPECT_DOUBLE_EQ(b.rho, a.rho);
    EXPECT_EQ(b.seed, a.seed);
    EXPECT_EQ(b.steps, a.steps);
    EXPECT_EQ(b.m0, a.m0);
    EXPECT_EQ(b.m_max, a.m_max);
    EXPECT_EQ(b.timeout_ms, a.timeout_ms);
    EXPECT_EQ(b.checkpoint_every, a.checkpoint_every);
  }
  {
    JobStatusReply a;
    a.job = 42;
    a.state = JobState::kTimedOut;
    a.kind = JobKind::kRun;
    a.rounds = 17;
    a.committed = 1000;
    a.pending = 24;
    a.wasted = 0.125;
    a.mean_r = 0.22;
    a.resumed = true;
    a.error = "deadline exceeded after 17 rounds";
    const auto b = JobStatusReply::decode(a.encode());
    EXPECT_EQ(b.job, a.job);
    EXPECT_EQ(b.state, a.state);
    EXPECT_EQ(b.rounds, a.rounds);
    EXPECT_EQ(b.committed, a.committed);
    EXPECT_EQ(b.pending, a.pending);
    EXPECT_DOUBLE_EQ(b.wasted, a.wasted);
    EXPECT_TRUE(b.resumed);
    EXPECT_EQ(b.error, a.error);
  }
  {
    ServerInfoReply a;
    a.queued = 3;
    a.active = 2;
    a.capacity = 8;
    a.submitted = 40;
    a.rejected = 11;
    a.completed = 30;
    a.failed = 2;
    a.cancelled = 1;
    a.timed_out = 2;
    a.resumed = 4;
    a.lanes = 4;
    a.draining = true;
    const auto b = ServerInfoReply::decode(a.encode());
    EXPECT_EQ(b.queued, a.queued);
    EXPECT_EQ(b.rejected, a.rejected);
    EXPECT_EQ(b.resumed, a.resumed);
    EXPECT_TRUE(b.draining);
  }
  {
    OverloadedReply a;
    a.queue_depth = 8;
    a.capacity = 8;
    const auto b = OverloadedReply::decode(a.encode());
    EXPECT_EQ(b.queue_depth, 8u);
    EXPECT_EQ(b.capacity, 8u);
  }
}

TEST(ServeWireFuzz, GraphNameValidationGatesTraversal) {
  EXPECT_TRUE(valid_graph_name("g1"));
  EXPECT_TRUE(valid_graph_name("mesh-4k_v2.txt"));
  EXPECT_FALSE(valid_graph_name(""));
  EXPECT_FALSE(valid_graph_name(std::string(65, 'a')));
  EXPECT_FALSE(valid_graph_name("../escape"));
  EXPECT_FALSE(valid_graph_name("a/b"));
  EXPECT_FALSE(valid_graph_name(".hidden"));
  EXPECT_FALSE(valid_graph_name("name with spaces"));
  EXPECT_FALSE(valid_graph_name(std::string("nul\0byte", 8)));
}

}  // namespace
}  // namespace optipar::serve
