#include "graph/union_find.hpp"

#include <gtest/gtest.h>

#include <set>

#include "support/rng.hpp"

namespace optipar {
namespace {

TEST(UnionFind, StartsFullyDisjoint) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_sets(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(uf.find(i), i);
    EXPECT_EQ(uf.set_size(i), 1u);
  }
}

TEST(UnionFind, UniteMergesAndReportsNovelty) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(1, 0));  // already joined
  EXPECT_TRUE(uf.connected(0, 1));
  EXPECT_FALSE(uf.connected(0, 2));
  EXPECT_EQ(uf.num_sets(), 3u);
  EXPECT_EQ(uf.set_size(0), 2u);
}

TEST(UnionFind, TransitiveConnectivity) {
  UnionFind uf(6);
  uf.unite(0, 1);
  uf.unite(2, 3);
  uf.unite(1, 2);
  EXPECT_TRUE(uf.connected(0, 3));
  EXPECT_EQ(uf.set_size(3), 4u);
  EXPECT_EQ(uf.num_sets(), 3u);
}

TEST(UnionFind, ChainCollapsesToOneSet) {
  constexpr std::uint32_t kN = 1000;
  UnionFind uf(kN);
  for (std::uint32_t i = 0; i + 1 < kN; ++i) uf.unite(i, i + 1);
  EXPECT_EQ(uf.num_sets(), 1u);
  EXPECT_EQ(uf.set_size(0), kN);
  EXPECT_TRUE(uf.connected(0, kN - 1));
}

TEST(UnionFind, RandomizedAgainstNaiveModel) {
  constexpr std::uint32_t kN = 64;
  UnionFind uf(kN);
  // Naive model: component label array, unions by relabel.
  std::vector<std::uint32_t> label(kN);
  for (std::uint32_t i = 0; i < kN; ++i) label[i] = i;

  Rng rng(77);
  for (int step = 0; step < 500; ++step) {
    const auto a = static_cast<std::uint32_t>(rng.below(kN));
    const auto b = static_cast<std::uint32_t>(rng.below(kN));
    uf.unite(a, b);
    const auto la = label[a];
    const auto lb = label[b];
    if (la != lb) {
      for (auto& l : label) {
        if (l == lb) l = la;
      }
    }
    // Spot-check a few pairs every iteration.
    for (int probe = 0; probe < 4; ++probe) {
      const auto x = static_cast<std::uint32_t>(rng.below(kN));
      const auto y = static_cast<std::uint32_t>(rng.below(kN));
      EXPECT_EQ(uf.connected(x, y), label[x] == label[y]);
    }
  }
  std::set<std::uint32_t> labels(label.begin(), label.end());
  EXPECT_EQ(uf.num_sets(), labels.size());
}

}  // namespace
}  // namespace optipar
