#include "apps/dmr/geometry.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace optipar::dmr {
namespace {

TEST(Orient2d, SignConventions) {
  const Point2 a{0, 0}, b{1, 0}, c{0, 1};
  EXPECT_GT(orient2d(a, b, c), 0.0);  // CCW
  EXPECT_LT(orient2d(a, c, b), 0.0);  // CW
  EXPECT_DOUBLE_EQ(orient2d(a, b, Point2{2, 0}), 0.0);  // collinear
}

TEST(Orient2d, TranslationInvariance) {
  const Point2 a{0, 0}, b{3, 1}, c{1, 4};
  const double base = orient2d(a, b, c);
  const double shifted = orient2d(Point2{a.x + 100, a.y - 50},
                                  Point2{b.x + 100, b.y - 50},
                                  Point2{c.x + 100, c.y - 50});
  EXPECT_NEAR(base, shifted, 1e-9);
}

TEST(Incircle, UnitCircleCases) {
  // CCW triangle on the unit circle; origin is strictly inside.
  const Point2 a{1, 0}, b{-0.5, std::sqrt(3) / 2}, c{-0.5, -std::sqrt(3) / 2};
  EXPECT_GT(incircle(a, b, c, Point2{0, 0}), 0.0);
  EXPECT_LT(incircle(a, b, c, Point2{2, 0}), 0.0);
  // A point on the circle is degenerate (≈ 0).
  EXPECT_NEAR(incircle(a, b, c, Point2{0, 1}), 0.0, 1e-9);
}

TEST(Distance, BasicAndSquaredConsistency) {
  const Point2 a{0, 0}, b{3, 4};
  EXPECT_DOUBLE_EQ(distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(distance_squared(a, b), 25.0);
}

TEST(Circumcenter, RightTriangleCenterIsHypotenuseMidpoint) {
  const Point2 a{0, 0}, b{4, 0}, c{0, 2};
  const Point2 cc = circumcenter(a, b, c);
  EXPECT_NEAR(cc.x, 2.0, 1e-12);
  EXPECT_NEAR(cc.y, 1.0, 1e-12);
  // All three vertices are equidistant from it.
  EXPECT_NEAR(distance(cc, a), distance(cc, b), 1e-12);
  EXPECT_NEAR(distance(cc, a), distance(cc, c), 1e-12);
  EXPECT_NEAR(circumradius(a, b, c), std::sqrt(5.0), 1e-12);
}

TEST(Circumcenter, EquilateralIsCentroid) {
  const Point2 a{0, 0}, b{1, 0}, c{0.5, std::sqrt(3) / 2};
  const Point2 cc = circumcenter(a, b, c);
  EXPECT_NEAR(cc.x, 0.5, 1e-12);
  EXPECT_NEAR(cc.y, std::sqrt(3) / 6, 1e-12);
}

TEST(ShortestEdge, PicksMinimum) {
  const Point2 a{0, 0}, b{10, 0}, c{0, 1};
  EXPECT_DOUBLE_EQ(shortest_edge(a, b, c), 1.0);
}

TEST(SignedArea, MatchesOrientation) {
  const Point2 a{0, 0}, b{2, 0}, c{0, 2};
  EXPECT_DOUBLE_EQ(signed_area2(a, b, c), 4.0);  // 2 * area
  EXPECT_DOUBLE_EQ(signed_area2(a, c, b), -4.0);
}

TEST(MinAngle, EquilateralIsSixtyDegrees) {
  const Point2 a{0, 0}, b{1, 0}, c{0.5, std::sqrt(3) / 2};
  EXPECT_NEAR(min_angle(a, b, c), std::numbers::pi / 3, 1e-9);
}

TEST(MinAngle, RightIsoscelesIsFortyFive) {
  const Point2 a{0, 0}, b{1, 0}, c{0, 1};
  EXPECT_NEAR(min_angle(a, b, c), std::numbers::pi / 4, 1e-9);
}

TEST(MinAngle, SliverIsTiny) {
  const Point2 a{0, 0}, b{1, 0}, c{0.5, 1e-4};
  EXPECT_LT(min_angle(a, b, c), 0.01);
}

}  // namespace
}  // namespace optipar::dmr
